// Package cdn simulates the content-distribution scenario of paper
// §2.2: edge caches that store prompts instead of media. "Media is
// sent from the content provider to caching locations or edge servers
// as prompts, and only the prompts are saved at the edge. At a
// request of a user, the edge server uses the prompt to generate the
// content and sends it to the requester. This approach maintains the
// storage benefits, but loses data transmission benefits."
//
// Three modes are modelled so the E12 bench can sweep them:
//
//	ModeTraditional — media cached at the edge, media transmitted.
//	ModeEdgeGenerate — prompts cached, edge generates per object,
//	                   media transmitted to the (naive) user.
//	ModeClientGenerate — prompts cached, prompts transmitted, the
//	                   user device generates.
package cdn

import (
	"container/list"
	"fmt"
	"time"

	"sww/internal/device"
)

// Mode selects how an edge node serves cached objects.
type Mode int

const (
	ModeTraditional Mode = iota
	ModeEdgeGenerate
	ModeClientGenerate
)

func (m Mode) String() string {
	switch m {
	case ModeTraditional:
		return "traditional"
	case ModeEdgeGenerate:
		return "edge-generate"
	case ModeClientGenerate:
		return "client-generate"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// An Object is one cacheable media item.
type Object struct {
	Key string
	// MediaBytes is the full media size.
	MediaBytes int
	// PromptBytes is the prompt-form size.
	PromptBytes int
	// GenTime is the time to regenerate the media at the edge
	// (workstation-class hardware).
	GenTime time.Duration
}

// cachedBytes is what the object occupies at the edge under a mode.
func (o Object) cachedBytes(m Mode) int {
	if m == ModeTraditional {
		return o.MediaBytes
	}
	return o.PromptBytes
}

// transmittedBytes is what one hit sends to the requester.
func (o Object) transmittedBytes(m Mode) int {
	if m == ModeClientGenerate {
		return o.PromptBytes
	}
	return o.MediaBytes
}

// An EdgeNode is one LRU cache of fixed capacity.
type EdgeNode struct {
	Mode     Mode
	Capacity int64 // bytes

	used    int64
	lru     *list.List // of *entry, front = most recent
	entries map[string]*list.Element

	Stats Stats
}

type entry struct {
	obj  Object
	size int64
}

// Stats aggregates an edge node's activity.
type Stats struct {
	Hits, Misses int

	// BytesToUser is transmission toward requesters.
	BytesToUser int64
	// BytesFromOrigin is fill traffic on misses.
	BytesFromOrigin int64

	// EdgeGenTime accumulates generation work done at the edge
	// (ModeEdgeGenerate only: §2.2's energy/carbon trade-off).
	EdgeGenTime time.Duration
	// EdgeGenEnergyWh is that work converted at workstation power.
	EdgeGenEnergyWh float64

	Evictions int
}

// NewEdgeNode builds an empty node.
func NewEdgeNode(mode Mode, capacity int64) *EdgeNode {
	return &EdgeNode{
		Mode:     mode,
		Capacity: capacity,
		lru:      list.New(),
		entries:  map[string]*list.Element{},
	}
}

// Used returns the occupied cache bytes.
func (n *EdgeNode) Used() int64 { return n.used }

// Len returns the number of cached objects.
func (n *EdgeNode) Len() int { return n.lru.Len() }

// Request serves one user request for obj, filling from origin on a
// miss. It returns whether the request hit.
func (n *EdgeNode) Request(obj Object) bool {
	hit := false
	if el, ok := n.entries[obj.Key]; ok {
		n.lru.MoveToFront(el)
		n.Stats.Hits++
		hit = true
	} else {
		n.Stats.Misses++
		// Fill: origin ships the cacheable form.
		n.Stats.BytesFromOrigin += int64(obj.cachedBytes(n.Mode))
		n.insert(obj)
	}
	// Serve.
	n.Stats.BytesToUser += int64(obj.transmittedBytes(n.Mode))
	if n.Mode == ModeEdgeGenerate {
		// Every request regenerates: the edge stores only the prompt.
		n.Stats.EdgeGenTime += obj.GenTime
		n.Stats.EdgeGenEnergyWh += device.Workstation.ImageGenEnergyWh(obj.GenTime)
	}
	return hit
}

func (n *EdgeNode) insert(obj Object) {
	size := int64(obj.cachedBytes(n.Mode))
	if size > n.Capacity {
		return // uncacheable at this capacity
	}
	for n.used+size > n.Capacity {
		back := n.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		n.lru.Remove(back)
		delete(n.entries, ev.obj.Key)
		n.used -= ev.size
		n.Stats.Evictions++
	}
	el := n.lru.PushFront(&entry{obj: obj, size: size})
	n.entries[obj.Key] = el
	n.used += size
}

// HitRate returns hits/(hits+misses).
func (n *EdgeNode) HitRate() float64 {
	total := n.Stats.Hits + n.Stats.Misses
	if total == 0 {
		return 0
	}
	return float64(n.Stats.Hits) / float64(total)
}

// EmbodiedCarbonKg returns the embodied carbon of the storage this
// node actually needs for its current working set (§6.4's embodied
// carbon argument: prompt caches need radically less SSD).
func (n *EdgeNode) EmbodiedCarbonKg() float64 {
	return device.EmbodiedCarbonKg(n.used, 1)
}
