package cdn

// Durable storage for the origin's sequenced invalidation log, so a
// restarted origin resumes at its old sequence number instead of
// restarting at zero — which would answer every edge's next poll with
// a reset and flush every warm shard in the fleet at once, exactly
// when a freshly restarted origin can least afford a full-fleet miss
// storm.
//
// The layout is a classic WAL + snapshot pair in one directory:
//
//   - inval.wal — one JSON line per appended entry, fsynced per
//     append. Invalidations are page unpublishes and evictions, a few
//     per second at the extreme, so the fsync is noise next to the
//     push fan-out it triggers.
//   - inval.snap — a point-in-time image of the retained log (seq,
//     floor, entries), written through atomicWriteFile (temp file,
//     fsync, rename, dir fsync).
//
// Compaction is crash-consistent by ordering alone: the snapshot is
// written first (atomically), the WAL truncated second. A crash
// between the two leaves WAL entries whose seq is already <= the
// snapshot's — recovery replays only entries beyond the snapshot, so
// duplicates are skipped structurally, not heuristically. A torn
// final WAL line (the append that was in flight when the machine
// died) ends replay at the last complete entry, which is exactly the
// prefix the fsync ordering guarantees durable.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

const (
	originWALName  = "inval.wal"
	originSnapName = "inval.snap"
	epochFileName  = "epoch"

	// originLogVersion guards the snapshot format; a mismatch is
	// treated like a missing snapshot (cold log), never a crash.
	originLogVersion = 1
)

// walEntry is one durable invalidation entry, also the snapshot's
// entry form.
type walEntry struct {
	Seq   uint64   `json:"seq"`
	Paths []string `json:"paths"`
}

// originSnapshot is the on-disk image the WAL is compacted into.
type originSnapshot struct {
	Version int        `json:"version"`
	Seq     uint64     `json:"seq"`
	Floor   uint64     `json:"floor"`
	Entries []walEntry `json:"entries"`
}

// originLogState is what recovery hands back to the Origin.
type originLogState struct {
	seq     uint64
	floor   uint64
	entries []walEntry
	// torn counts WAL lines dropped as unparseable (a torn tail from
	// a crash mid-append; anything after it is unreachable).
	torn int
}

// originLog owns the WAL file handle and compaction bookkeeping.
// Callers serialize access (the Origin calls under o.mu).
type originLog struct {
	dir     string
	wal     *os.File
	pending int // WAL entries since the last compaction
}

// openOriginLog recovers the durable log from dir (creating it when
// missing) and returns the handle plus the recovered state.
func openOriginLog(dir string) (*originLog, originLogState, error) {
	var st originLogState
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, st, err
	}
	// Snapshot first: it is the compacted prefix.
	if data, err := os.ReadFile(filepath.Join(dir, originSnapName)); err == nil {
		var snap originSnapshot
		if err := json.Unmarshal(data, &snap); err == nil && snap.Version == originLogVersion {
			st.seq, st.floor, st.entries = snap.Seq, snap.Floor, snap.Entries
		}
	}
	// Then the WAL: replay every complete line beyond the snapshot.
	walPath := filepath.Join(dir, originWALName)
	pending := 0
	if data, err := os.ReadFile(walPath); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var e walEntry
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				// Torn tail: the crash interrupted this append, and
				// nothing after it was acknowledged either.
				st.torn++
				break
			}
			pending++
			if e.Seq <= st.seq {
				// Already covered by the snapshot (a crash landed
				// between snapshot write and WAL truncate).
				continue
			}
			st.entries = append(st.entries, e)
			st.seq = e.Seq
		}
	}
	wal, err := os.OpenFile(walPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, st, err
	}
	return &originLog{dir: dir, wal: wal, pending: pending}, st, nil
}

// append durably appends one entry: marshal, write one line, fsync.
func (l *originLog) append(e walEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := l.wal.Write(data); err != nil {
		return err
	}
	if err := l.wal.Sync(); err != nil {
		return err
	}
	l.pending++
	return nil
}

// compact replaces the snapshot with snap and truncates the WAL. The
// ordering (snapshot durable first, WAL truncated second) makes a
// crash between the two merely leave duplicate WAL entries, which
// recovery skips by sequence number.
func (l *originLog) compact(snap originSnapshot) error {
	snap.Version = originLogVersion
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	if err := atomicWriteFile(filepath.Join(l.dir, originSnapName), data); err != nil {
		return err
	}
	if err := l.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := l.wal.Seek(0, 0); err != nil {
		return err
	}
	if err := l.wal.Sync(); err != nil {
		return err
	}
	l.pending = 0
	return nil
}

func (l *originLog) close() error {
	if l == nil || l.wal == nil {
		return nil
	}
	return l.wal.Close()
}

// loadEpoch reads the persisted fencing epoch from dir, 0 when the
// file does not exist yet.
func loadEpoch(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, epochFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("corrupt epoch file: %w", err)
	}
	return e, nil
}

// saveEpoch durably persists the fencing epoch. The epoch must hit
// disk before the origin acts under it: a promoted standby that
// crashed and forgot its promotion could come back below the fleet's
// epoch and fence itself out of its own authority.
func saveEpoch(dir string, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(dir, epochFileName),
		[]byte(strconv.FormatUint(epoch, 10)+"\n"))
}
