package cdn

// Live peer membership for the self-healing edge mesh. The static
// -peers list the tier booted with rots the moment an edge dies or a
// new one joins; this layer keeps each node's view of the fleet
// current by heartbeating every peer and walking it through the
// classic three-state ladder:
//
//	alive   — last probe (or data-path observation) succeeded.
//	suspect — probes have failed for SuspectAfter; the peer stays on
//	          the ring (placement should not churn on one lost
//	          heartbeat) but stops being a peer-fill candidate.
//	dead    — probes have failed for DeadAfter; OnDead fires and the
//	          owner removes the peer from its cdn.Ring, resharding
//	          its keys onto the survivors.
//
// Recovery is symmetric: one successful probe makes a suspect or dead
// peer alive again, and a dead→alive transition fires OnAlive so the
// peer is re-admitted to the ring. Probes are not the only evidence —
// data-path callers feed ReportSuccess/ReportFailure, so an edge that
// just failed a peer-fill does not wait a heartbeat round to start
// suspecting, and a successful fetch revives a peer instantly.
//
// The sweep interval is jittered ±20% so a fleet booted together does
// not probe in lockstep, and every probe runs under its own timeout —
// one blackholed peer must not stall the sweep that would notice the
// others dying.

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"

	"sww/internal/telemetry"
)

// MemberState is one peer's position on the alive/suspect/dead ladder.
type MemberState int32

const (
	MemberAlive MemberState = iota
	MemberSuspect
	MemberDead
)

func (s MemberState) String() string {
	switch s {
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberDead:
		return "dead"
	}
	return "unknown"
}

// A ProbeFunc checks one peer's liveness; nil error means alive.
type ProbeFunc func(ctx context.Context) error

// MemberConfig shapes the membership sweep.
type MemberConfig struct {
	// Heartbeat paces the probe sweep. <= 0 means 500ms.
	Heartbeat time.Duration
	// ProbeTimeout bounds one peer probe. <= 0 means Heartbeat.
	ProbeTimeout time.Duration
	// SuspectAfter is how long a peer may go unheard before it is
	// suspected. <= 0 means 3x Heartbeat.
	SuspectAfter time.Duration
	// DeadAfter is how long before a suspect is declared dead and
	// removed from the ring. <= 0 means 2x SuspectAfter.
	DeadAfter time.Duration

	// Seed drives the sweep jitter; 0 derives a per-process default.
	Seed int64

	// OnAlive fires when a dead peer recovers (re-admit to the ring);
	// OnDead when a peer is declared dead (remove from the ring).
	// Both run outside the membership lock.
	OnAlive func(name string)
	OnDead  func(name string)

	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c MemberConfig) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return 500 * time.Millisecond
	}
	return c.Heartbeat
}

func (c MemberConfig) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return c.heartbeat()
	}
	return c.ProbeTimeout
}

func (c MemberConfig) suspectAfter() time.Duration {
	if c.SuspectAfter <= 0 {
		return 3 * c.heartbeat()
	}
	return c.SuspectAfter
}

func (c MemberConfig) deadAfter() time.Duration {
	if c.DeadAfter <= 0 {
		return 2 * c.suspectAfter()
	}
	return c.DeadAfter
}

// suspectFailures is how many consecutive data-path failures suspect
// an alive peer. Probes refresh lastOK every heartbeat, so a silence
// threshold alone would let a peer whose probe port answers but whose
// data path is broken stay a peer-fill candidate forever; a short
// failure streak is evidence enough to stop filling through it, while
// still letting one flaky fetch pass.
const suspectFailures = 3

type member struct {
	name   string
	probe  ProbeFunc
	state  MemberState
	lastOK time.Time
	fails  int // consecutive data-path failures since the last success
}

// A Membership tracks the liveness of a peer set. All methods are
// safe for concurrent use.
type Membership struct {
	cfg MemberConfig
	now func() time.Time

	mu    sync.Mutex
	peers map[string]*member
	rng   *rand.Rand

	loopCancel context.CancelFunc
	loopDone   chan struct{}

	probeFails  telemetry.Counter
	transitions telemetry.Counter
}

// NewMembership builds an empty membership table; populate it with
// AddPeer and run the sweep with Start (or drive Tick directly).
func NewMembership(cfg MemberConfig) *Membership {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Membership{
		cfg:   cfg,
		now:   now,
		peers: map[string]*member{},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// AddPeer registers a peer, initially alive with a full grace period
// (a freshly added peer is not suspect until SuspectAfter passes
// without a successful probe). Idempotent; re-adding replaces the
// probe but keeps the state.
func (m *Membership) AddPeer(name string, probe ProbeFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[name]; ok {
		p.probe = probe
		return
	}
	m.peers[name] = &member{name: name, probe: probe, state: MemberAlive, lastOK: m.now()}
}

// RemovePeer forgets a peer without firing callbacks (the caller
// chose the removal).
func (m *Membership) RemovePeer(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.peers, name)
}

// State returns one peer's state; unknown peers report dead.
func (m *Membership) State(name string) MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[name]; ok {
		return p.state
	}
	return MemberDead
}

// Alive reports whether name is currently alive (the peer-fill and
// routing gate: suspects are skipped without being ring-removed).
func (m *Membership) Alive(name string) bool { return m.State(name) == MemberAlive }

// States snapshots every peer's state.
func (m *Membership) States() map[string]MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]MemberState, len(m.peers))
	for n, p := range m.peers {
		out[n] = p.state
	}
	return out
}

// Counts returns how many peers are in each state.
func (m *Membership) Counts() (alive, suspect, dead int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		switch p.state {
		case MemberAlive:
			alive++
		case MemberSuspect:
			suspect++
		case MemberDead:
			dead++
		}
	}
	return
}

// ReportSuccess records data-path proof the peer is alive — a
// completed fetch revives it without waiting for the next sweep.
func (m *Membership) ReportSuccess(name string) {
	m.mu.Lock()
	p, ok := m.peers[name]
	if !ok {
		m.mu.Unlock()
		return
	}
	p.lastOK = m.now()
	p.fails = 0
	fire := m.setStateLocked(p, MemberAlive)
	m.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// ReportFailure records a data-path failure against the peer. It
// escalates alive→suspect after suspectFailures consecutive failures
// (or sooner, when probes have also been silent for SuspectAfter) —
// probes refresh lastOK every heartbeat, so without the streak count a
// peer with a live probe port but a broken data path would never stop
// being a peer-fill candidate. It never declares death — removal from
// the ring is reserved for the sweep, which requires DeadAfter of
// sustained silence, so a burst of data-path errors cannot reshard
// the fleet.
func (m *Membership) ReportFailure(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[name]
	if !ok || p.state != MemberAlive {
		return
	}
	p.fails++
	if p.fails >= suspectFailures || m.now().Sub(p.lastOK) >= m.cfg.suspectAfter() {
		p.state = MemberSuspect
		p.fails = 0
		m.transitions.Add(1)
	}
}

// setStateLocked transitions p and returns the callback to fire after
// unlocking (nil when no callback applies). Callers hold m.mu.
func (m *Membership) setStateLocked(p *member, next MemberState) func() {
	prev := p.state
	if prev == next {
		return nil
	}
	p.state = next
	m.transitions.Add(1)
	name := p.name
	switch {
	case next == MemberDead && m.cfg.OnDead != nil:
		return func() { m.cfg.OnDead(name) }
	case prev == MemberDead && next == MemberAlive && m.cfg.OnAlive != nil:
		return func() { m.cfg.OnAlive(name) }
	}
	return nil
}

// Tick runs one sweep: probe every peer concurrently (each under its
// own timeout) and apply the outcomes. Exported so tests and
// experiment harnesses can drive membership deterministically.
func (m *Membership) Tick(ctx context.Context) {
	m.mu.Lock()
	peers := make([]*member, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].name < peers[j].name })

	results := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		if p.probe == nil {
			continue
		}
		wg.Add(1)
		go func(i int, probe ProbeFunc) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.cfg.probeTimeout())
			defer cancel()
			results[i] = probe(pctx)
		}(i, p.probe)
	}
	wg.Wait()

	var fires []func()
	now := m.now()
	m.mu.Lock()
	for i, p := range peers {
		if _, still := m.peers[p.name]; !still {
			continue // removed while probing
		}
		if results[i] == nil {
			p.lastOK = now
			p.fails = 0
			if fire := m.setStateLocked(p, MemberAlive); fire != nil {
				fires = append(fires, fire)
			}
			continue
		}
		m.probeFails.Add(1)
		silent := now.Sub(p.lastOK)
		switch {
		case silent >= m.cfg.deadAfter():
			if fire := m.setStateLocked(p, MemberDead); fire != nil {
				fires = append(fires, fire)
			}
		case silent >= m.cfg.suspectAfter():
			if fire := m.setStateLocked(p, MemberSuspect); fire != nil {
				fires = append(fires, fire)
			}
		}
	}
	m.mu.Unlock()
	for _, fire := range fires {
		fire()
	}
}

// Start runs the jittered sweep loop until Close.
func (m *Membership) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	m.loopCancel = cancel
	m.loopDone = make(chan struct{})
	go func() {
		defer close(m.loopDone)
		for {
			m.mu.Lock()
			d := jitterDuration(m.cfg.heartbeat(), m.rng)
			m.mu.Unlock()
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			m.Tick(ctx)
		}
	}()
}

// Close stops the sweep loop.
func (m *Membership) Close() {
	if m.loopCancel != nil {
		m.loopCancel()
		<-m.loopDone
	}
}

// Register exports the membership counters and state gauges onto reg.
// Per-peer state is a numeric gauge (0 alive, 1 suspect, 2 dead) so a
// dashboard can alert on any nonzero value.
func (m *Membership) Register(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Adopt("sww_member_probe_failures_total", &m.probeFails)
	reg.Adopt("sww_member_transitions_total", &m.transitions)
	reg.GaugeFunc("sww_member_alive", func() float64 { a, _, _ := m.Counts(); return float64(a) })
	reg.GaugeFunc("sww_member_suspect", func() float64 { _, s, _ := m.Counts(); return float64(s) })
	reg.GaugeFunc("sww_member_dead", func() float64 { _, _, d := m.Counts(); return float64(d) })
	m.mu.Lock()
	names := make([]string, 0, len(m.peers))
	for n := range m.peers {
		names = append(names, n)
	}
	m.mu.Unlock()
	for _, n := range names {
		n := n
		reg.GaugeFunc(telemetry.WithLabel("sww_member_peer_state", "peer", n), func() float64 {
			return float64(m.State(n))
		})
	}
}

// newJitterRng builds the seeded source behind a jittered loop; each
// loop gets its own so none contend on a shared lock.
func newJitterRng(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}

// jitterDuration spreads d uniformly over ±20% so loops seeded at the
// same instant (a fleet booted by one script, a herd of pollers) fall
// out of phase instead of synchronizing their load spikes.
func jitterDuration(d time.Duration, rng *rand.Rand) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (0.8 + 0.4*rng.Float64()))
}
