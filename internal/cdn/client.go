package cdn

// The terminal-client side of the edge tier: an EdgeClient routes
// each path to the edge the ring places it on, and fails over down
// the ring's successor list when that edge is dead. Each edge is
// backed by its own ResilientClient wrapping a one-endpoint health
// set, so transport outcomes feed a per-edge breaker the router can
// consult without burning a connection attempt: a dead edge is
// skipped outright until its probe cooldown passes, which is what
// keeps the error rate near zero when a replica is killed mid-run.

import (
	"context"
	"fmt"

	"sww/internal/core"
	"sww/internal/device"
	"sww/internal/telemetry"
)

// EdgeClientConfig shapes the router and its per-edge clients.
type EdgeClientConfig struct {
	// Device and Proc configure local generation, as on a plain
	// core.Client. Proc nil means an always-traditional client.
	Device device.Profile
	Proc   *core.PageProcessor

	// Retry shapes each per-edge retry ladder. Keep MaxAttempts low:
	// failing over to the next edge beats hammering a dead one.
	Retry core.RetryPolicy

	// Health shapes each edge's breaker (zero value = defaults).
	Health core.EndpointHealthConfig

	// Factory builds the per-connection client; nil means HTTP/2.
	Factory core.ClientFactory

	// RingReplicas overrides the virtual-node count (0 = default).
	RingReplicas int
}

type edgePeer struct {
	name string
	ep   *core.Endpoint
	rc   *core.ResilientClient
}

// An EdgeClient fetches through an edge fleet with ring placement and
// client-side failover.
type EdgeClient struct {
	cfg   EdgeClientConfig
	ring  *Ring
	peers map[string]*edgePeer

	// mesh, when enabled, keeps the ring synced to live membership
	// instead of the boot-time peer list (see EnableMembership).
	mesh *Membership

	rerouted  telemetry.Counter // fetches served by a non-owner edge
	exhausted telemetry.Counter // fetches that failed on every edge
}

// NewEdgeClient builds a router over the named edges. Each edge's
// dial opens a transport to that edge.
func NewEdgeClient(cfg EdgeClientConfig, dials map[string]core.DialFunc) *EdgeClient {
	c := &EdgeClient{
		cfg:   cfg,
		ring:  NewRing(cfg.RingReplicas),
		peers: map[string]*edgePeer{},
	}
	for name, dial := range dials {
		c.AddPeer(name, dial)
	}
	return c
}

// AddPeer registers one more edge on the ring with its own transport
// and breaker. Not safe to call concurrently with fetches; build the
// fleet before serving (membership handles liveness churn after that).
func (c *EdgeClient) AddPeer(name string, dial core.DialFunc) {
	set := core.NewEndpointSet(c.cfg.Health)
	ep := set.Add(name, dial)
	rc := core.NewResilientClientEndpoints(set, c.cfg.Device, c.cfg.Proc, c.cfg.Retry, c.cfg.Factory)
	c.peers[name] = &edgePeer{name: name, ep: ep, rc: rc}
	c.ring.Add(name)
}

// EnableMembership replaces "the boot-time peer list is the fleet"
// with live membership: every peer is heartbeated through its own
// transport, walked alive→suspect→dead on silence, removed from the
// placement ring when declared dead, and re-admitted on recovery.
// Unlike RemovePeer, ring surgery here keeps the peer's client — the
// probes need it to notice the edge coming back. Transport outcomes
// from regular fetches feed the same ladder via the endpoint breaker,
// so a dead edge starts being suspected by the very request that
// found it dead, not a heartbeat round later. Returns the membership
// (started; Close stops it with the client) so callers can inspect
// states. Call once, after the fleet is built.
func (c *EdgeClient) EnableMembership(cfg MemberConfig) *Membership {
	onAlive, onDead := cfg.OnAlive, cfg.OnDead
	cfg.OnDead = func(name string) {
		c.ring.Remove(name)
		if onDead != nil {
			onDead(name)
		}
	}
	cfg.OnAlive = func(name string) {
		c.ring.Add(name)
		if onAlive != nil {
			onAlive(name)
		}
	}
	m := NewMembership(cfg)
	for name, p := range c.peers {
		name, rc := name, p.rc
		m.AddPeer(name, func(ctx context.Context) error {
			raw, err := rc.FetchRawContext(ctx, healthPath)
			if err == nil && raw.Status != 200 {
				return errStatus(raw.Status)
			}
			return err
		})
		p.ep.SetOnStateChange(func(healthy bool) {
			if healthy {
				m.ReportSuccess(name)
			} else {
				m.ReportFailure(name)
			}
		})
	}
	c.mesh = m
	m.Start()
	return m
}

// Membership returns the live membership, nil unless enabled.
func (c *EdgeClient) Membership() *Membership { return c.mesh }

// Ring returns the client's placement ring.
func (c *EdgeClient) Ring() *Ring { return c.ring }

// RemovePeer drops an edge from the ring (its keys reshard onto the
// survivors) and closes its connection. Use when an edge is known
// dead rather than transiently failing — transient failures are
// handled by the breaker without ring surgery.
func (c *EdgeClient) RemovePeer(name string) {
	p, ok := c.peers[name]
	if !ok {
		return
	}
	delete(c.peers, name)
	c.ring.Remove(name)
	p.rc.Close()
}

// Health reports each edge's breaker state, keyed by edge name.
func (c *EdgeClient) Health() map[string]core.EndpointHealth {
	out := make(map[string]core.EndpointHealth, len(c.peers))
	for name, p := range c.peers {
		out[name] = p.ep.Health()
	}
	return out
}

// FetchContext fetches path through the fleet: ring owner first, then
// its successors. Edges whose breaker is open are skipped on the
// first pass (no connection attempt wasted) and only probed on the
// second pass if every healthy candidate failed. Returns the result
// and the name of the edge that served it.
func (c *EdgeClient) FetchContext(ctx context.Context, path string) (*core.FetchResult, string, error) {
	order := c.ring.LookupN(path, c.ring.Len())
	if len(order) == 0 {
		return nil, "", fmt.Errorf("cdn: no edges configured")
	}
	var lastErr error
	tried := make(map[string]bool, len(order))
	for pass := 0; pass < 2; pass++ {
		for _, name := range order {
			p, ok := c.peers[name]
			if !ok || tried[name] {
				continue
			}
			if pass == 0 && !p.ep.Healthy() {
				continue // breaker open: skip without an attempt
			}
			tried[name] = true
			res, err := p.rc.FetchContext(ctx, path)
			if err == nil {
				if name != order[0] {
					c.rerouted.Add(1)
				}
				return res, name, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
		}
	}
	c.exhausted.Add(1)
	return nil, "", fmt.Errorf("cdn: all %d edges failed for %s: %w", len(order), path, lastErr)
}

// Fetch is FetchContext without a deadline.
func (c *EdgeClient) Fetch(path string) (*core.FetchResult, string, error) {
	return c.FetchContext(context.Background(), path)
}

// Close drops every per-edge connection and stops the membership
// sweep when one is running.
func (c *EdgeClient) Close() error {
	if c.mesh != nil {
		c.mesh.Close()
	}
	var first error
	for _, p := range c.peers {
		if err := p.rc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Register exports the router counters and every per-edge breaker.
func (c *EdgeClient) Register(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Adopt("sww_edgeclient_rerouted_total", &c.rerouted)
	reg.Adopt("sww_edgeclient_exhausted_total", &c.exhausted)
	for _, p := range c.peers {
		p.rc.Endpoints().Register(reg)
	}
	if c.mesh != nil {
		c.mesh.Register(reg)
	}
}
