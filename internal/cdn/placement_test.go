package cdn

import (
	"testing"
	"time"
)

// TestPlacementBackboneConstraint reproduces the §7 argument: with
// media delivery, deep cache placements breach the backbone
// constraint; with prompts, every placement is feasible.
func TestPlacementBackboneConstraint(t *testing.T) {
	load := DefaultPlacementLoad()
	rows := PlacementSweep(load)
	byKey := map[string]PlacementResult{}
	for _, r := range rows {
		key := r.Placement.Name
		if r.SWW {
			key += "/sww"
		} else {
			key += "/media"
		}
		byKey[key] = r
	}
	// Media at 10k req/s × 10% miss × 1.4 MB ≈ 11 Gbps: feasible on a
	// 40 Gbps backbone at the metro edge, but the same analysis with
	// a tighter constraint or higher load breaks. Use a tight
	// backbone to show the breach.
	tight := load
	tight.BackboneCapacityGbps = 5
	for _, p := range []Placement{PlacementMetro, PlacementRegional, PlacementCore} {
		media := AnalyzePlacement(p, tight, false)
		sww := AnalyzePlacement(p, tight, true)
		if media.Feasible {
			t.Errorf("%s: media delivery should breach a 5 Gbps backbone (%.1f Gbps)",
				p.Name, media.BackboneGbps)
		}
		if !sww.Feasible {
			t.Errorf("%s: prompt delivery should fit easily (%.3f Gbps)",
				p.Name, sww.BackboneGbps)
		}
	}
	// The prompt traffic is ~two orders of magnitude smaller.
	ratio := byKey["core/media"].BackboneGbps / byKey["core/sww"].BackboneGbps
	if ratio < 100 {
		t.Errorf("backbone reduction = %.0fx, want ≈147x", ratio)
	}
}

// TestPlacementLatencyShare reproduces "in SWW the network latency is
// a minor problem": even at the deepest placement, the user RTT is a
// negligible share of the SWW page latency, while for traditional
// delivery it dominates.
func TestPlacementLatencyShare(t *testing.T) {
	load := DefaultPlacementLoad()
	core := AnalyzePlacement(PlacementCore, load, true)
	if core.LatencyShare > 0.01 {
		t.Errorf("SWW latency share at core = %.3f, want <1%%", core.LatencyShare)
	}
	trad := AnalyzePlacement(PlacementCore, load, false)
	if trad.LatencyShare < 0.3 {
		t.Errorf("traditional latency share at core = %.3f, want dominant", trad.LatencyShare)
	}
	// Moving from metro to core costs SWW almost nothing.
	metro := AnalyzePlacement(PlacementMetro, load, true)
	delta := core.PageLatency - metro.PageLatency
	if delta > 200*time.Millisecond {
		t.Errorf("placement delta = %v", delta)
	}
	relative := float64(delta) / float64(core.PageLatency)
	if relative > 0.01 {
		t.Errorf("placement latency penalty = %.4f of page latency, want negligible", relative)
	}
}

// TestPlacementStorageConsolidation: the deep placement needs ~70×
// fewer sites, multiplying the embodied-carbon savings of E10.
func TestPlacementStorageConsolidation(t *testing.T) {
	if PlacementCore.Sites >= PlacementMetro.Sites/10 {
		t.Errorf("core sites = %d vs metro %d", PlacementCore.Sites, PlacementMetro.Sites)
	}
	rows := PlacementSweep(DefaultPlacementLoad())
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
}

func BenchmarkPlacementSweep(b *testing.B) {
	load := DefaultPlacementLoad()
	for i := 0; i < b.N; i++ {
		if rows := PlacementSweep(load); len(rows) != 6 {
			b.Fatal("sweep incomplete")
		}
	}
}
