package cdn

import (
	"testing"
	"time"
)

// TestPlacementBackboneConstraint reproduces the §7 argument: with
// media delivery, deep cache placements breach the backbone
// constraint; with prompts, every placement is feasible.
func TestPlacementBackboneConstraint(t *testing.T) {
	load := DefaultPlacementLoad()
	rows := PlacementSweep(load)
	byKey := map[string]PlacementResult{}
	for _, r := range rows {
		key := r.Placement.Name
		if r.SWW {
			key += "/sww"
		} else {
			key += "/media"
		}
		byKey[key] = r
	}
	// Media at 10k req/s × 10% miss × 1.4 MB ≈ 11 Gbps: feasible on a
	// 40 Gbps backbone at the metro edge, but the same analysis with
	// a tighter constraint or higher load breaks. Use a tight
	// backbone to show the breach.
	tight := load
	tight.BackboneCapacityGbps = 5
	for _, p := range []Placement{PlacementMetro, PlacementRegional, PlacementCore} {
		media := AnalyzePlacement(p, tight, false)
		sww := AnalyzePlacement(p, tight, true)
		if media.Feasible {
			t.Errorf("%s: media delivery should breach a 5 Gbps backbone (%.1f Gbps)",
				p.Name, media.BackboneGbps)
		}
		if !sww.Feasible {
			t.Errorf("%s: prompt delivery should fit easily (%.3f Gbps)",
				p.Name, sww.BackboneGbps)
		}
	}
	// The prompt traffic is ~two orders of magnitude smaller.
	ratio := byKey["core/media"].BackboneGbps / byKey["core/sww"].BackboneGbps
	if ratio < 100 {
		t.Errorf("backbone reduction = %.0fx, want ≈147x", ratio)
	}
}

// TestPlacementLatencyShare reproduces "in SWW the network latency is
// a minor problem": even at the deepest placement, the user RTT is a
// negligible share of the SWW page latency, while for traditional
// delivery it dominates.
func TestPlacementLatencyShare(t *testing.T) {
	load := DefaultPlacementLoad()
	core := AnalyzePlacement(PlacementCore, load, true)
	if core.LatencyShare > 0.01 {
		t.Errorf("SWW latency share at core = %.3f, want <1%%", core.LatencyShare)
	}
	trad := AnalyzePlacement(PlacementCore, load, false)
	if trad.LatencyShare < 0.3 {
		t.Errorf("traditional latency share at core = %.3f, want dominant", trad.LatencyShare)
	}
	// Moving from metro to core costs SWW almost nothing.
	metro := AnalyzePlacement(PlacementMetro, load, true)
	delta := core.PageLatency - metro.PageLatency
	if delta > 200*time.Millisecond {
		t.Errorf("placement delta = %v", delta)
	}
	relative := float64(delta) / float64(core.PageLatency)
	if relative > 0.01 {
		t.Errorf("placement latency penalty = %.4f of page latency, want negligible", relative)
	}
}

// TestPlacementStorageConsolidation: the deep placement needs ~70×
// fewer sites, multiplying the embodied-carbon savings of E10.
func TestPlacementStorageConsolidation(t *testing.T) {
	if PlacementCore.Sites >= PlacementMetro.Sites/10 {
		t.Errorf("core sites = %d vs metro %d", PlacementCore.Sites, PlacementMetro.Sites)
	}
	rows := PlacementSweep(DefaultPlacementLoad())
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
}

// TestPlacementZeroSites: a degenerate placement with no sites (and
// zero RTT) must analyze without dividing by zero or claiming a
// latency share out of thin air.
func TestPlacementZeroSites(t *testing.T) {
	p := Placement{Name: "nowhere", UserRTT: 0, Sites: 0}
	load := DefaultPlacementLoad()
	trad := AnalyzePlacement(p, load, false)
	if trad.StorageSites != 0 {
		t.Errorf("sites = %d", trad.StorageSites)
	}
	// Traditional at zero RTT: page latency is 0, and the share must
	// stay 0 (not NaN) by the guard in AnalyzePlacement.
	if trad.PageLatency != 0 {
		t.Errorf("zero-RTT traditional latency = %v", trad.PageLatency)
	}
	if trad.LatencyShare != 0 {
		t.Errorf("latency share = %v, want 0 (division guard)", trad.LatencyShare)
	}
	// SWW still pays generation time even from a zero-latency cache.
	sww := AnalyzePlacement(p, load, true)
	if sww.PageLatency != load.GenerationTime {
		t.Errorf("SWW latency = %v, want pure generation time %v", sww.PageLatency, load.GenerationTime)
	}
	if sww.LatencyShare != 0 {
		t.Errorf("SWW zero-RTT share = %v", sww.LatencyShare)
	}
}

// TestPlacementZeroCapacityBackbone: with no backbone at all, any
// positive miss traffic is infeasible in both modes, and only a
// perfect hit rate (zero miss traffic) restores feasibility.
func TestPlacementZeroCapacityBackbone(t *testing.T) {
	load := DefaultPlacementLoad()
	load.BackboneCapacityGbps = 0
	for _, sww := range []bool{false, true} {
		r := AnalyzePlacement(PlacementCore, load, sww)
		if r.Feasible {
			t.Errorf("sww=%v: feasible over a zero-capacity backbone at %.3f Gbps", sww, r.BackboneGbps)
		}
	}
	load.HitRate = 1.0 // no misses → no backbone traffic → 0 <= 0 holds
	r := AnalyzePlacement(PlacementCore, load, true)
	if !r.Feasible || r.BackboneGbps != 0 {
		t.Errorf("perfect hit rate: feasible=%v traffic=%.3f", r.Feasible, r.BackboneGbps)
	}
}

// TestPlacementCrossover walks the load up until traditional delivery
// breaches the backbone and checks SWW is still far from its own
// breach at that point — the crossover band where prompts are the
// only feasible delivery mode. The band's width is the media/prompt
// byte ratio, so both modes must flip at loads ~147× apart.
func TestPlacementCrossover(t *testing.T) {
	load := DefaultPlacementLoad()
	findBreach := func(sww bool) float64 {
		l := load
		for rps := 1000.0; rps <= 1e10; rps *= 2 {
			l.RequestsPerSecond = rps
			if !AnalyzePlacement(PlacementCore, l, sww).Feasible {
				return rps
			}
		}
		t.Fatalf("sww=%v never breached", sww)
		return 0
	}
	mediaBreach := findBreach(false)
	swwBreach := findBreach(true)
	if swwBreach <= mediaBreach {
		t.Fatalf("SWW breached at %.0f req/s, media at %.0f — wrong order", swwBreach, mediaBreach)
	}
	// Byte ratio ≈147× but the doubling search quantizes to powers of
	// two; demand at least 64× separation.
	if swwBreach/mediaBreach < 64 {
		t.Errorf("crossover band = %.0fx, want ≥64x (byte ratio ~147x)", swwBreach/mediaBreach)
	}
	// Inside the band: media infeasible, SWW feasible.
	l := load
	l.RequestsPerSecond = mediaBreach * 4
	if AnalyzePlacement(PlacementCore, l, false).Feasible {
		t.Error("media feasible inside the crossover band")
	}
	if !AnalyzePlacement(PlacementCore, l, true).Feasible {
		t.Error("SWW infeasible inside the crossover band")
	}
}

func BenchmarkPlacementSweep(b *testing.B) {
	load := DefaultPlacementLoad()
	for i := 0; i < b.N; i++ {
		if rows := PlacementSweep(load); len(rows) != 6 {
			b.Fatal("sweep incomplete")
		}
	}
}
