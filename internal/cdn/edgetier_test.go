package cdn

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sww/internal/core"
	"sww/internal/device"
	"sww/internal/faultnet"
	"sww/internal/genai/imagegen"
	"sww/internal/genai/textgen"
	"sww/internal/workload"
)

func newProc(t *testing.T) *core.PageProcessor {
	t.Helper()
	proc, err := core.NewPageProcessor(device.Laptop, imagegen.SD3Medium, textgen.DeepSeek8)
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

const tierPages = 8

// tierHarness wires a live origin + edge fleet over in-memory pipes,
// with switches to blackhole the origin, cut one edge's upstream
// (asymmetric partition), or kill an edge outright.
type tierHarness struct {
	t      *testing.T
	origin *Origin
	srv    *core.Server

	originDown  atomic.Bool             // future origin dials hit a blackhole
	upstreamCut map[string]*atomic.Bool // per-edge upstream partition

	mu          sync.Mutex
	originConns []net.Conn // origin-side conn ends, severable
	edgeConns   map[string][]net.Conn

	edges    map[string]*Edge
	edgeDead map[string]*atomic.Bool
}

// tierRetry is the terminal-client policy: patient enough to absorb
// the edge's whole upstream ladder inside one attempt.
func tierRetry() core.RetryPolicy {
	return core.RetryPolicy{
		MaxAttempts:    2,
		AttemptTimeout: 2 * time.Second,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		Jitter:         0.2,
		Seed:           17,
	}
}

// edgeRetry is the edge→origin policy: deliberately tighter than the
// terminal client's patience, so a dead origin fails into the stale
// path while the client is still waiting.
func edgeRetry() core.RetryPolicy {
	return core.RetryPolicy{
		MaxAttempts:    2,
		AttemptTimeout: 40 * time.Millisecond,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		Jitter:         0.2,
		Seed:           17,
	}
}

func tierHealth() core.EndpointHealthConfig {
	return core.EndpointHealthConfig{FailureThreshold: 2, ProbeCooldown: 25 * time.Millisecond}
}

func newTier(t *testing.T, edgeNames []string, mod func(*EdgeConfig)) *tierHarness {
	t.Helper()
	srv, err := core.NewServer(imagegen.SD3Medium, textgen.DeepSeek8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tierPages; i++ {
		srv.AddPage(workload.CDNPage(i))
	}
	h := &tierHarness{
		t:           t,
		srv:         srv,
		origin:      NewOrigin(srv, 0),
		upstreamCut: map[string]*atomic.Bool{},
		edgeConns:   map[string][]net.Conn{},
		edges:       map[string]*Edge{},
		edgeDead:    map[string]*atomic.Bool{},
	}
	for _, name := range edgeNames {
		name := name
		h.upstreamCut[name] = &atomic.Bool{}
		h.edgeDead[name] = &atomic.Bool{}
		origins := core.NewEndpointSet(tierHealth())
		origins.Add("origin", func() (net.Conn, error) {
			if h.originDown.Load() || h.upstreamCut[name].Load() {
				return faultnet.Blackhole(), nil
			}
			cEnd, sEnd := net.Pipe()
			h.srv.StartConn(sEnd)
			h.mu.Lock()
			h.originConns = append(h.originConns, sEnd)
			h.mu.Unlock()
			return cEnd, nil
		})
		cfg := EdgeConfig{
			Name:         name,
			TTL:          25 * time.Millisecond,
			MaxStale:     time.Hour,
			PollInterval: 15 * time.Millisecond,
			Retry:        edgeRetry(),
			Peers:        edgeNames,
		}
		if mod != nil {
			mod(&cfg)
		}
		h.edges[name] = NewEdge(cfg, origins)
	}
	t.Cleanup(func() {
		for _, e := range h.edges {
			e.Close()
		}
	})
	return h
}

// blackholeOrigin makes the origin unreachable: established upstream
// connections die and every redial lands in a silent blackhole that
// only attempt timeouts escape.
func (h *tierHarness) blackholeOrigin() {
	h.originDown.Store(true)
	h.mu.Lock()
	conns := h.originConns
	h.originConns = nil
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (h *tierHarness) healOrigin() { h.originDown.Store(false) }

// cutUpstream partitions one edge from the origin (its peers and
// clients still reach it — the asymmetric case).
func (h *tierHarness) cutUpstream(edge string) {
	h.upstreamCut[edge].Store(true)
	h.mu.Lock()
	conns := h.originConns
	h.originConns = nil
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (h *tierHarness) healUpstream(edge string) { h.upstreamCut[edge].Store(false) }

// killEdge takes one edge off the air entirely.
func (h *tierHarness) killEdge(name string) {
	h.edgeDead[name].Store(true)
	h.mu.Lock()
	conns := h.edgeConns[name]
	delete(h.edgeConns, name)
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	h.edges[name].Close()
}

// edgeClient builds a ring-routing terminal client over the fleet.
func (h *tierHarness) edgeClient() *EdgeClient {
	dials := map[string]core.DialFunc{}
	for name := range h.edges {
		name := name
		dials[name] = func() (net.Conn, error) {
			if h.edgeDead[name].Load() {
				return nil, errors.New("edge down")
			}
			cEnd, sEnd := net.Pipe()
			h.edges[name].StartConn(sEnd)
			h.mu.Lock()
			h.edgeConns[name] = append(h.edgeConns[name], cEnd)
			h.mu.Unlock()
			return cEnd, nil
		}
	}
	ec := NewEdgeClient(EdgeClientConfig{Retry: tierRetry(), Health: tierHealth()}, dials)
	h.t.Cleanup(func() { ec.Close() })
	return ec
}

func (h *tierHarness) fleetStats() EdgeStats {
	var sum EdgeStats
	for _, e := range h.edges {
		s := e.Stats()
		sum.Requests += s.Requests
		sum.Hits += s.Hits
		sum.Misses += s.Misses
		sum.StaleServes += s.StaleServes
		sum.Failovers += s.Failovers
		sum.UpstreamErrors += s.UpstreamErrors
		sum.Errors += s.Errors
	}
	return sum
}

// TestEdgeTierServes: terminal clients fetch through the ring-routed
// fleet; every page arrives with the origin's content, requests land
// on their ring owner, and a second round is served from edge caches
// without touching the origin again.
func TestEdgeTierServes(t *testing.T) {
	names := []string{"edge1", "edge2", "edge3"}
	h := newTier(t, names, func(c *EdgeConfig) { c.TTL = time.Hour })
	ec := h.edgeClient()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < tierPages; i++ {
		path := workload.CDNPagePath(i)
		res, served, err := ec.FetchContext(ctx, path)
		if err != nil {
			t.Fatalf("fetch %s: %v", path, err)
		}
		if want := ec.Ring().Lookup(path); served != want {
			t.Errorf("%s served by %s, ring owner %s", path, served, want)
		}
		if !strings.Contains(res.HTML, fmt.Sprintf("edge tier page %03d payload", i)) {
			t.Errorf("%s: wrong content through the edge", path)
		}
	}
	first := h.fleetStats()
	if first.Misses != tierPages {
		t.Errorf("first round misses = %d, want %d", first.Misses, tierPages)
	}

	for i := 0; i < tierPages; i++ {
		if _, _, err := ec.FetchContext(ctx, workload.CDNPagePath(i)); err != nil {
			t.Fatalf("second round fetch: %v", err)
		}
	}
	second := h.fleetStats()
	if hits := second.Hits - first.Hits; hits != tierPages {
		t.Errorf("second round hits = %d, want %d", hits, tierPages)
	}
	if second.Misses != first.Misses {
		t.Errorf("second round pulled the origin again (%d → %d misses)", first.Misses, second.Misses)
	}
}

// TestEdgeTierAbilityKeying: the same path serves prompt bytes to a
// generative client and rendered bytes to a traditional one through
// the same edge — the cache must key on ability, not just path.
func TestEdgeTierAbilityKeying(t *testing.T) {
	// The patient upstream policy: LoadPage renders server-side for
	// the traditional client, which overruns the chaos tests' tight
	// 40ms attempts on slow (-race) runners.
	h := newTier(t, []string{"edge1"}, func(c *EdgeConfig) {
		c.TTL = time.Hour
		c.Retry = tierRetry()
	})
	h.srv.AddPage(workload.LoadPage(0))
	path := workload.LoadPagePath(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	dial := func() (net.Conn, error) {
		cEnd, sEnd := net.Pipe()
		h.edges["edge1"].StartConn(sEnd)
		return cEnd, nil
	}
	// Traditional client first: the edge must pull and cache the
	// rendered form.
	trad := core.NewResilientClient(dial, device.Laptop, nil, tierRetry(), nil)
	defer trad.Close()
	tres, err := trad.FetchContext(ctx, path)
	if err != nil {
		t.Fatalf("traditional fetch: %v", err)
	}
	if tres.Mode != core.ModeTraditional {
		t.Fatalf("traditional client got mode %q", tres.Mode)
	}

	// Generative client next: same path, but it must NOT receive the
	// cached rendered bytes — ability keying forces a second pull that
	// returns the prompt form.
	proc := newProc(t)
	gen := core.NewResilientClient(dial, device.Laptop, proc, tierRetry(), nil)
	defer gen.Close()
	gres, err := gen.FetchContext(ctx, path)
	if err != nil {
		t.Fatalf("generative fetch: %v", err)
	}
	if gres.Mode != core.ModeGenerative {
		t.Fatalf("generative client got mode %q through the edge cache", gres.Mode)
	}
	if s := h.edges["edge1"].Stats(); s.Misses < 2 {
		t.Errorf("misses = %d, want one per ability", s.Misses)
	}
}

// TestEdgeTierStaleServe: with the origin blackholed, warm entries
// keep being served past their TTL (stamped stale), cold paths fail,
// and after the origin heals the edge goes back to fresh pulls.
func TestEdgeTierStaleServe(t *testing.T) {
	h := newTier(t, []string{"edge1"}, nil)
	ec := h.edgeClient()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	warm := workload.CDNPagePath(0)
	cold := workload.CDNPagePath(1)

	if _, _, err := ec.FetchContext(ctx, warm); err != nil {
		t.Fatalf("warming fetch: %v", err)
	}

	h.blackholeOrigin()
	time.Sleep(40 * time.Millisecond) // let the warm entry expire

	res, _, err := ec.FetchContext(ctx, warm)
	if err != nil {
		t.Fatalf("stale fetch during blackhole: %v", err)
	}
	if !strings.Contains(res.HTML, "edge tier page 000") {
		t.Error("stale serve returned wrong content")
	}
	s := h.edges["edge1"].Stats()
	if s.StaleServes == 0 {
		t.Error("no stale serves counted during origin blackhole")
	}
	if s.UpstreamErrors == 0 {
		t.Error("no upstream errors counted during origin blackhole")
	}
	if _, _, err := ec.FetchContext(ctx, cold); err == nil {
		t.Error("cold path served during origin blackhole — from where?")
	}

	h.healOrigin()
	// The origin endpoint breaker needs its cooldown before a probe;
	// with the breaker open the 502 path kicks a background
	// revalidation, whose success flips the endpoint healthy (and may
	// itself store the page — so the success below can be a hit).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := ec.FetchContext(ctx, cold); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("edge never recovered after the origin healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A never-seen path must now take the synchronous pull path again.
	if _, _, err := ec.FetchContext(ctx, workload.CDNPagePath(2)); err != nil {
		t.Fatalf("cold fetch after heal: %v", err)
	}
	after := h.edges["edge1"].Stats()
	if after.Misses <= s.Misses {
		t.Error("no fresh origin pull after heal")
	}
}

// TestEdgeTierInvalidation: an unpublish at the origin reaches the
// edge through the poller and the edge stops serving the content.
func TestEdgeTierInvalidation(t *testing.T) {
	h := newTier(t, []string{"edge1"}, func(c *EdgeConfig) { c.TTL = time.Hour })
	h.edges["edge1"].Start()
	ec := h.edgeClient()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	path := workload.CDNPagePath(2)

	if _, _, err := ec.FetchContext(ctx, path); err != nil {
		t.Fatalf("warming fetch: %v", err)
	}
	h.srv.RemovePage(path)
	if h.origin.Seq() == 0 {
		t.Fatal("RemovePage did not append to the invalidation log")
	}

	deadline := time.Now().Add(5 * time.Second)
	for h.edges["edge1"].LastSeq() < h.origin.Seq() {
		if time.Now().After(deadline) {
			t.Fatalf("edge never caught up: seq %d < %d", h.edges["edge1"].LastSeq(), h.origin.Seq())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := h.edges["edge1"].Stats(); s.InvalApplied == 0 {
		t.Error("invalidation reached the edge but removed nothing")
	}
	// The edge must now miss and surface the origin's 404 rather than
	// serve the unpublished page from cache.
	if _, _, err := ec.FetchContext(ctx, path); err == nil {
		t.Error("unpublished page still served after invalidation")
	}
}

// TestEdgeTierPartitionReconcile: an edge partitioned from the origin
// keeps serving its warm copy (bounded staleness is the designed
// hazard window), and on reconnect its poller resumes from the last
// applied sequence — the invalidation issued mid-partition lands and
// the unpublished page stops being served.
func TestEdgeTierPartitionReconcile(t *testing.T) {
	h := newTier(t, []string{"edge1"}, nil)
	h.edges["edge1"].Start()
	ec := h.edgeClient()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	path := workload.CDNPagePath(3)

	if _, _, err := ec.FetchContext(ctx, path); err != nil {
		t.Fatalf("warming fetch: %v", err)
	}
	h.cutUpstream("edge1")
	h.srv.RemovePage(path) // unpublished while the edge cannot hear

	time.Sleep(60 * time.Millisecond) // past TTL, poller now failing
	if _, _, err := ec.FetchContext(ctx, path); err != nil {
		t.Fatalf("partitioned edge dropped its warm copy: %v", err)
	}
	if s := h.edges["edge1"].Stats(); s.PollErrors == 0 {
		t.Error("partitioned poller reported no errors")
	}

	h.healUpstream("edge1")
	deadline := time.Now().Add(10 * time.Second)
	for h.edges["edge1"].LastSeq() < h.origin.Seq() {
		if time.Now().After(deadline) {
			t.Fatalf("reconcile never happened: seq %d < %d", h.edges["edge1"].LastSeq(), h.origin.Seq())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, err := ec.FetchContext(ctx, path); err == nil {
		t.Error("unpublished page still served after reconcile")
	}
}

// TestEdgeTierFeedReset: an edge that fell further behind than the
// origin's invalidation log reaches is told to reset, and flushes its
// whole shard rather than guess what it missed.
func TestEdgeTierFeedReset(t *testing.T) {
	srv, err := core.NewServer(imagegen.SD3Medium, textgen.DeepSeek8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tierPages; i++ {
		srv.AddPage(workload.CDNPage(i))
	}
	origin := NewOrigin(srv, 2) // tiny log to force truncation
	origins := core.NewEndpointSet(tierHealth())
	origins.Add("origin", func() (net.Conn, error) {
		cEnd, sEnd := net.Pipe()
		srv.StartConn(sEnd)
		return cEnd, nil
	})
	e := NewEdge(EdgeConfig{Name: "edge1", TTL: time.Hour, Retry: edgeRetry()}, origins)
	defer e.Close()

	dial := func() (net.Conn, error) {
		cEnd, sEnd := net.Pipe()
		e.StartConn(sEnd)
		return cEnd, nil
	}
	cl := core.NewResilientClient(dial, device.Laptop, nil, tierRetry(), nil)
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cl.FetchContext(ctx, workload.CDNPagePath(0)); err != nil {
		t.Fatalf("warming fetch: %v", err)
	}
	if e.Stats().CacheEntries == 0 {
		t.Fatal("nothing cached")
	}

	// Three invalidations through a 2-entry log truncate past the
	// edge's position (lastSeq still 0).
	origin.Invalidate([]string{"/a"})
	origin.Invalidate([]string{"/b"})
	origin.Invalidate([]string{"/c"})
	if err := e.PollOnce(ctx); err != nil {
		t.Fatalf("poll: %v", err)
	}
	s := e.Stats()
	if s.InvalResets != 1 {
		t.Errorf("resets = %d, want 1", s.InvalResets)
	}
	if s.CacheEntries != 0 {
		t.Errorf("cache entries after reset = %d, want 0", s.CacheEntries)
	}
	if s.LastSeq != origin.Seq() {
		t.Errorf("lastSeq = %d, want %d", s.LastSeq, origin.Seq())
	}
}

// TestEdgeTierFailover: killing one of three edges mid-run must not
// surface errors to terminal clients — the picker's breaker routes
// around the corpse, the survivors count the failover traffic, and
// removing the dead peer reshards the ring exactly as LookupN
// predicted.
func TestEdgeTierFailover(t *testing.T) {
	names := []string{"edge1", "edge2", "edge3"}
	h := newTier(t, names, func(c *EdgeConfig) { c.TTL = time.Hour })
	ec := h.edgeClient()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Baseline round; record each path's predicted failover order.
	successor := map[string]string{}
	victim := "edge2"
	for i := 0; i < tierPages; i++ {
		path := workload.CDNPagePath(i)
		order := ec.Ring().LookupN(path, 3)
		if order[0] == victim {
			successor[path] = order[1]
		}
		if _, _, err := ec.FetchContext(ctx, path); err != nil {
			t.Fatalf("baseline fetch %s: %v", path, err)
		}
	}
	if len(successor) == 0 {
		t.Fatalf("%s owns no pages; enlarge the corpus", victim)
	}

	h.killEdge(victim)

	failures := 0
	const rounds = 3
	for r := 0; r < rounds; r++ {
		for i := 0; i < tierPages; i++ {
			path := workload.CDNPagePath(i)
			_, served, err := ec.FetchContext(ctx, path)
			if err != nil {
				failures++
				continue
			}
			if served == victim {
				t.Fatalf("%s served by the dead edge", path)
			}
		}
	}
	total := rounds * tierPages
	if rate := float64(failures) / float64(total); rate >= 0.01 {
		t.Errorf("error rate with one edge dead = %.1f%% (%d/%d), want <1%%",
			rate*100, failures, total)
	}
	if h.fleetStats().Failovers == 0 {
		t.Error("survivors counted no failover traffic")
	}

	// Declare the edge dead: the ring reshards, and every key the
	// victim owned lands exactly on its predicted successor.
	ec.RemovePeer(victim)
	if ec.Ring().Len() != 2 {
		t.Fatalf("ring size after reshard = %d", ec.Ring().Len())
	}
	for path, want := range successor {
		if got := ec.Ring().Lookup(path); got != want {
			t.Errorf("%s resharded to %s, LookupN predicted %s", path, got, want)
		}
	}
}
