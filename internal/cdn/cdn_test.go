package cdn

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func testObjects(n int) []Object {
	rng := rand.New(rand.NewSource(3))
	out := make([]Object, n)
	for i := range out {
		media := 20_000 + rng.Intn(120_000)
		out[i] = Object{
			Key:         fmt.Sprintf("obj-%d", i),
			MediaBytes:  media,
			PromptBytes: 150 + rng.Intn(280),
			GenTime:     time.Duration(500+rng.Intn(1500)) * time.Millisecond,
		}
	}
	return out
}

// zipfIndex draws an index in [0,n) with a heavy head, approximating
// web popularity.
func zipfIndex(rng *rand.Rand, n int) int {
	z := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
	return int(z.Uint64())
}

func TestLRUBasics(t *testing.T) {
	objs := testObjects(3)
	n := NewEdgeNode(ModeTraditional, int64(objs[0].MediaBytes+objs[1].MediaBytes))
	if hit := n.Request(objs[0]); hit {
		t.Error("first request must miss")
	}
	if hit := n.Request(objs[0]); !hit {
		t.Error("second request must hit")
	}
	n.Request(objs[1])
	if n.Len() != 2 {
		t.Fatalf("len = %d", n.Len())
	}
	// Inserting a third evicts the least recently used (objs[0] was
	// touched more recently than objs[1]? No: order of use is 0,0,1 →
	// LRU is 0? 1 was used last, so 0 is LRU? 0 was used twice but
	// earlier; eviction removes 0.
	n.Request(objs[2])
	if n.Request(objs[1]) == false && n.Len() > 0 {
		t.Log("objs[1] evicted instead; LRU order differs")
	}
	if n.Stats.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	if n.Used() > n.Capacity {
		t.Error("cache over capacity")
	}
}

// TestStorageBenefitRetained checks §2.2: prompt caching keeps the
// storage benefit.
func TestStorageBenefitRetained(t *testing.T) {
	objs := testObjects(200)
	trad := NewEdgeNode(ModeTraditional, 1<<40)
	edge := NewEdgeNode(ModeEdgeGenerate, 1<<40)
	for _, o := range objs {
		trad.Request(o)
		edge.Request(o)
	}
	if edge.Used() >= trad.Used()/50 {
		t.Errorf("prompt cache %d vs media cache %d: storage benefit too small", edge.Used(), trad.Used())
	}
	if edge.EmbodiedCarbonKg() >= trad.EmbodiedCarbonKg() {
		t.Error("embodied carbon must shrink with prompt caching")
	}
}

// TestTransmissionBenefitLost checks §2.2: edge generation loses the
// transmission benefit (full media still flows to users) while
// client generation keeps it.
func TestTransmissionBenefitLost(t *testing.T) {
	objs := testObjects(100)
	rng := rand.New(rand.NewSource(9))
	trad := NewEdgeNode(ModeTraditional, 1<<40)
	edge := NewEdgeNode(ModeEdgeGenerate, 1<<40)
	client := NewEdgeNode(ModeClientGenerate, 1<<40)
	for i := 0; i < 2000; i++ {
		o := objs[zipfIndex(rng, len(objs))]
		trad.Request(o)
		edge.Request(o)
		client.Request(o)
	}
	if edge.Stats.BytesToUser != trad.Stats.BytesToUser {
		t.Errorf("edge generation should transmit the same media bytes: %d vs %d",
			edge.Stats.BytesToUser, trad.Stats.BytesToUser)
	}
	if client.Stats.BytesToUser >= edge.Stats.BytesToUser/50 {
		t.Errorf("client generation transmit %d vs %d: benefit too small",
			client.Stats.BytesToUser, edge.Stats.BytesToUser)
	}
}

// TestEdgeEnergyTradeoff checks §2.2's "potential energy and carbon
// emissions trade off when running at the edge": edge generation
// costs energy on every request.
func TestEdgeEnergyTradeoff(t *testing.T) {
	objs := testObjects(10)
	edge := NewEdgeNode(ModeEdgeGenerate, 1<<40)
	for i := 0; i < 100; i++ {
		edge.Request(objs[i%len(objs)])
	}
	if edge.Stats.EdgeGenEnergyWh <= 0 {
		t.Fatal("edge generation consumed no energy")
	}
	// 100 generations of ~0.5-2 s at 130 W ≈ 2-7 Wh.
	if edge.Stats.EdgeGenEnergyWh < 1 || edge.Stats.EdgeGenEnergyWh > 10 {
		t.Errorf("edge energy = %.2f Wh, implausible", edge.Stats.EdgeGenEnergyWh)
	}
	trad := NewEdgeNode(ModeTraditional, 1<<40)
	for i := 0; i < 100; i++ {
		trad.Request(objs[i%len(objs)])
	}
	if trad.Stats.EdgeGenEnergyWh != 0 {
		t.Error("traditional mode should not generate")
	}
}

// TestCapacityEffect checks the cache-capacity story: at equal
// capacity, a prompt cache holds orders of magnitude more objects and
// therefore hits far more often on a heavy-tailed workload.
func TestCapacityEffect(t *testing.T) {
	objs := testObjects(2000)
	const capacity = 2 << 20 // 2 MiB edge cache
	rng := rand.New(rand.NewSource(11))
	trad := NewEdgeNode(ModeTraditional, capacity)
	prompt := NewEdgeNode(ModeClientGenerate, capacity)
	for i := 0; i < 30000; i++ {
		o := objs[zipfIndex(rng, len(objs))]
		trad.Request(o)
		prompt.Request(o)
	}
	if prompt.HitRate() <= trad.HitRate() {
		t.Errorf("prompt cache hit rate %.3f <= media cache %.3f",
			prompt.HitRate(), trad.HitRate())
	}
	if prompt.Len() <= trad.Len() {
		t.Errorf("prompt cache holds %d objects vs %d", prompt.Len(), trad.Len())
	}
}

func TestUncacheableObject(t *testing.T) {
	n := NewEdgeNode(ModeTraditional, 1000)
	big := Object{Key: "big", MediaBytes: 5000, PromptBytes: 100}
	n.Request(big)
	if n.Len() != 0 {
		t.Error("object larger than capacity must not be cached")
	}
	// But it is still served (proxied).
	if n.Stats.BytesToUser != 5000 {
		t.Errorf("served %d bytes", n.Stats.BytesToUser)
	}
	// And misses again.
	n.Request(big)
	if n.Stats.Misses != 2 {
		t.Errorf("misses = %d", n.Stats.Misses)
	}
}

func TestModeString(t *testing.T) {
	if ModeTraditional.String() != "traditional" ||
		ModeEdgeGenerate.String() != "edge-generate" ||
		ModeClientGenerate.String() != "client-generate" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func BenchmarkCDNRequest(b *testing.B) {
	objs := testObjects(1000)
	n := NewEdgeNode(ModeClientGenerate, 1<<20)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Request(objs[zipfIndex(rng, len(objs))])
	}
}
