package cdn

// Crash-safe warm restart for the edge shard. An edge that dies and
// comes back cold turns into an origin stampede: every key it used to
// hold is now a synchronous pull, exactly when the fleet may already
// be degraded (the paper's agent-swarm workloads make a cold edge a
// capacity event, not a blip). So the edge periodically snapshots its
// shard — every cached raw reply with its freshness clock, plus the
// last applied invalidation sequence — to one JSON file, written
// atomically (temp file, fsync, rename, directory fsync) so a crash
// at any instant — mid-write or right after the rename — leaves the
// previous snapshot or the new one intact, never a torn one.
//
// On boot the snapshot is reloaded before the edge serves: entries
// already beyond TTL+MaxStale are dropped (they could never be served
// anyway), everything else re-enters the cache with its original
// added time, so freshness and staleness accounting survive the
// restart. Correctness then comes from the invalidation protocol, not
// the snapshot: lastSeq is restored with the entries, and the first
// anti-entropy poll resumes from it — every invalidation issued while
// the edge was down is applied (or, if the log was truncated past our
// position, the reset flushes the whole reloaded shard) before the
// shard has served anything stale for longer than one poll interval.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"sww/internal/core"
)

// atomicWriteFile writes data to path so a crash at any instant leaves
// either the old file or the new one, never a torn or missing write:
// the bytes go to a temp file in the same directory, the temp file is
// fsynced before the rename (a rename only orders the *name*; without
// the fsync the kernel may commit the rename before the data blocks,
// and a crash then restores an empty or truncated file under the final
// name), and after the rename the containing directory is fsynced so
// the new directory entry itself is durable. It is the shared write
// path for edge shard snapshots, the origin's durable invalidation
// log snapshot, and the fencing epoch file.
func atomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse directory fsync (it is optional on some)
// still got the rename's atomicity, so their error is not fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// snapshotVersion guards the on-disk format; a mismatch means the
// snapshot was written by an incompatible build and is ignored (a
// cold start, never a crash).
const snapshotVersion = 1

// snapshotFile is the on-disk form of one edge shard.
type snapshotFile struct {
	Version int             `json:"version"`
	Name    string          `json:"name"`
	SavedAt time.Time       `json:"saved_at"`
	LastSeq uint64          `json:"last_seq"`
	Entries []snapshotEntry `json:"entries"`
}

// snapshotEntry is one cached raw reply. Entries are saved in LRU
// order, most recent first.
type snapshotEntry struct {
	Key         string    `json:"key"`
	Path        string    `json:"path"`
	Added       time.Time `json:"added"`
	Status      int       `json:"status"`
	Mode        string    `json:"mode,omitempty"`
	ContentType string    `json:"content_type"`
	Body        []byte    `json:"body"`
}

// SaveSnapshot writes the current shard index and lastSeq to the
// configured snapshot path, atomically. No-op without a SnapshotPath.
// Runs from the snapshot loop, from Close, and from the server's
// graceful drain.
func (e *Edge) SaveSnapshot() error {
	if e.cfg.SnapshotPath == "" {
		return nil
	}
	// Hold feedMu so the snapshot is consistent with the invalidation
	// stream: no flush or invalidation can interleave between reading
	// lastSeq and walking the cache, which could persist an entry that
	// sequence claims was already removed.
	e.feedMu.Lock()
	snap := snapshotFile{
		Version: snapshotVersion,
		Name:    e.cfg.Name,
		SavedAt: e.now(),
		LastSeq: e.lastSeq.Load(),
	}
	e.cache.Each(func(key string, value any, _ int64) {
		ent := value.(*edgeEntry)
		snap.Entries = append(snap.Entries, snapshotEntry{
			Key:         key,
			Path:        ent.path,
			Added:       ent.added,
			Status:      ent.raw.Status,
			Mode:        ent.raw.Mode,
			ContentType: ent.raw.ContentType,
			Body:        ent.raw.Body,
		})
	})
	e.feedMu.Unlock()
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	if err := atomicWriteFile(e.cfg.SnapshotPath, data); err != nil {
		return err
	}
	e.snapSaves.Add(1)
	return nil
}

// loadSnapshot restores the shard from disk at boot. Any problem —
// missing file, torn write the rename should have prevented, another
// edge's snapshot — degrades to a cold start; a snapshot is an
// optimization, never a source of truth.
func (e *Edge) loadSnapshot() {
	data, err := os.ReadFile(e.cfg.SnapshotPath)
	if err != nil {
		return
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		e.snapErrors.Add(1)
		return
	}
	if snap.Version != snapshotVersion || snap.Name != e.cfg.Name {
		e.snapErrors.Add(1)
		return
	}
	now := e.now()
	limit := e.cfg.ttl() + e.cfg.maxStale()
	restored := 0
	// Insert in reverse so the most-recently-used entry (saved first)
	// is added last and ends up at the front of the rebuilt LRU.
	for i := len(snap.Entries) - 1; i >= 0; i-- {
		se := snap.Entries[i]
		if se.Key == "" || se.Path == "" || now.Sub(se.Added) > limit {
			continue
		}
		raw := &core.RawReply{
			Status:      se.Status,
			Mode:        se.Mode,
			ContentType: se.ContentType,
			Body:        se.Body,
		}
		e.storeAt(se.Key, se.Path, raw, se.Added)
		restored++
	}
	e.lastSeq.Store(snap.LastSeq)
	e.snapRestored.Store(int64(restored))
}
