package cdn

// A warm standby is a second origin that mirrors the primary's
// invalidation log and takes over its sequence space when the primary
// dies. It rides the same wire protocol the edges already speak: the
// standby polls /sww-cdn/invalidations with the subscription headers
// (so the primary also pushes to it, making the mirror near-real-time
// between polls) and applies each feed through MirrorFeed. Liveness is
// inferred from that same traffic — any accepted feed, pushed or
// polled, proves the primary alive — so there is no separate heartbeat
// protocol to disagree with the data path.
//
// Failover ladder:
//
//  1. Feeds stop landing. After PromoteAfter of silence the standby
//     calls Promote: the epoch is bumped past the primary's and
//     persisted *before* the role flips, then the standby serves
//     /sww-cdn/ as the primary at the head it mirrored.
//  2. Edges find it through their origin EndpointSet: the dead
//     primary's breaker opens, Pick falls through to the standby, and
//     the higher epoch on its feeds tells every edge a failover
//     happened (adopted, counted, never reset — the sequence space
//     continued).
//  3. The promoted standby keeps polling the old primary's address,
//     now carrying the new epoch in the request header. The moment a
//     restarted zombie answers, it sees the newer epoch, demotes
//     itself to fenced, and refuses writes with 409 — so a partitioned
//     old primary cannot split the sequence space even if some edge
//     still has it sticky. Edges carry the epoch on their polls too;
//     the watch loop just makes fencing prompt instead of eventual.
//
// The promotion trigger is deliberately crude (a silence timeout, no
// quorum). The deployment model is one primary + one standby named in
// every edge's -origin-addr list; the failure that matters is "the
// primary process died", and the epoch fence bounds the damage of a
// false positive: the fenced loser stops writing, and the winner owns
// the log.

import (
	"context"
	"encoding/json"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"sww/internal/core"
	"sww/internal/device"
	"sww/internal/hpack"
	"sww/internal/telemetry"
	"sww/internal/timeutil"
)

// StandbyConfig shapes the mirror/failover loop around a standby
// origin.
type StandbyConfig struct {
	// Name identifies the standby in the primary's subscriber table
	// (like an edge name). Defaults to "standby".
	Name string

	// AdvertiseAddr, when set, is sent with each mirror poll so the
	// primary dials back and pushes feeds between polls.
	AdvertiseAddr string

	// PrimaryDial reaches the primary's control surface. Required.
	PrimaryDial core.DialFunc

	// PollInterval is the mirror poll cadence (and the liveness probe
	// cadence after promotion). Default 250ms.
	PollInterval time.Duration

	// PromoteAfter is how long the primary must stay silent — no
	// accepted push, no successful poll — before the standby promotes
	// itself. Default 8x PollInterval.
	PromoteAfter time.Duration

	// Retry shapes the mirror client. Keep MaxAttempts low: a dead
	// primary should cost one failed dial per tick, not a retry storm.
	Retry core.RetryPolicy

	// Seed feeds the poll jitter; 0 seeds from the name.
	Seed int64

	// Clock substitutes time.Now in tests.
	Clock func() time.Time
}

// Standby runs the mirror-and-failover loop for a standby origin. Build
// the origin with OriginConfig{Standby: true}, wrap it in NewStandby,
// then Start.
type Standby struct {
	cfg    StandbyConfig
	origin *Origin
	rc     *core.ResilientClient

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	lastHeard time.Time

	mirrorPolls  telemetry.Counter // successful mirror polls
	mirrorErrors telemetry.Counter // failed polls (pre- and post-promotion)
	zombieSeen   telemetry.Counter // old-primary answers fenced since our promotion
}

// NewStandby wires the failover loop around origin (which must have
// been built as a standby). Call Start to begin mirroring.
func NewStandby(origin *Origin, cfg StandbyConfig) *Standby {
	if cfg.Name == "" {
		cfg.Name = "standby"
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = 8 * cfg.PollInterval
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry.MaxAttempts = 1
	}
	s := &Standby{
		cfg:    cfg,
		origin: origin,
		rc:     core.NewResilientClient(cfg.PrimaryDial, device.Workstation, nil, cfg.Retry, nil),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.lastHeard = cfg.Clock()
	// Pushes landing on our control surface are liveness too — the
	// primary proved itself by feeding us. Set before Start, read only
	// by MirrorFeed afterwards.
	origin.onMirror = s.touch
	return s
}

// Origin returns the origin this standby manages.
func (s *Standby) Origin() *Origin { return s.origin }

// touch records that the primary was heard from.
func (s *Standby) touch() {
	s.mu.Lock()
	s.lastHeard = s.cfg.Clock()
	s.mu.Unlock()
}

// sinceHeard reports how long the primary has been silent.
func (s *Standby) sinceHeard() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Clock().Sub(s.lastHeard)
}

// Start runs the mirror/failover loop until Close.
func (s *Standby) Start() {
	s.wg.Add(1)
	go s.loop()
}

// Close stops the loop. It does not close the origin.
func (s *Standby) Close() {
	s.cancel()
	s.wg.Wait()
}

// loop is the whole ladder: mirror while standby, promote on silence,
// watch (and fence) the old primary after promotion.
func (s *Standby) loop() {
	defer s.wg.Done()
	seed := s.cfg.Seed
	if seed == 0 {
		for _, c := range s.cfg.Name {
			seed = seed*131 + int64(c)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	// One reused timer for the whole loop: a per-iteration time.After
	// leaks a live runtime timer every poll until it expires.
	timer := timeutil.New()
	defer timer.Stop()
	for {
		// Jittered cadence so a fleet of standbys (tests run many)
		// doesn't poll in lockstep.
		d := s.cfg.PollInterval + time.Duration(rng.Int63n(int64(s.cfg.PollInterval)/4+1))
		if !timer.Wait(s.ctx.Done(), d) {
			return
		}
		s.pollPrimary()
		if s.origin.Role() == RoleStandby && s.sinceHeard() >= s.cfg.PromoteAfter {
			s.origin.Promote()
		}
	}
}

// pollPrimary runs one mirror poll (or, after promotion, one fence
// probe — same request, different consequence).
func (s *Standby) pollPrimary() {
	ctx, cancel := context.WithTimeout(s.ctx, s.cfg.PollInterval*4)
	defer cancel()
	fields := []hpack.HeaderField{
		{Name: edgeNameHeader, Value: s.cfg.Name},
		{Name: originEpochHeader, Value: strconv.FormatUint(s.origin.Epoch(), 10)},
	}
	if s.cfg.AdvertiseAddr != "" {
		fields = append(fields, hpack.HeaderField{Name: edgeAddrHeader, Value: s.cfg.AdvertiseAddr})
	}
	path := invalidationsPath + "?since=" + strconv.FormatUint(s.origin.Seq(), 10)
	raw, err := s.rc.FetchRawContext(ctx, path, fields...)
	if err != nil {
		s.mirrorErrors.Add(1)
		return
	}
	if raw.Status == statusFenced {
		// Only a fenced origin answers 409: the old primary saw our
		// (or someone's) newer epoch and stood down.
		s.zombieSeen.Add(1)
		return
	}
	if raw.Status != 200 {
		s.mirrorErrors.Add(1)
		return
	}
	var feed InvalidationFeed
	if err := json.Unmarshal(raw.Body, &feed); err != nil {
		s.mirrorErrors.Add(1)
		return
	}
	// MirrorFeed touches lastHeard via onMirror while we are standby
	// and no-ops after promotion — the probe result alone matters then.
	s.origin.MirrorFeed(feed)
	s.mirrorPolls.Add(1)
}

// StandbyStats is a snapshot of the failover loop's counters.
type StandbyStats struct {
	MirrorPolls  uint64
	MirrorErrors uint64
	ZombieSeen   uint64
	SilenceFor   time.Duration
}

// Stats snapshots the standby loop's counters.
func (s *Standby) Stats() StandbyStats {
	return StandbyStats{
		MirrorPolls:  s.mirrorPolls.Load(),
		MirrorErrors: s.mirrorErrors.Load(),
		ZombieSeen:   s.zombieSeen.Load(),
		SilenceFor:   s.sinceHeard(),
	}
}

// Register exports the standby loop's counters onto reg (the origin's
// own role/epoch gauges come from Origin.Register).
func (s *Standby) Register(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Adopt("sww_standby_mirror_polls_total", &s.mirrorPolls)
	reg.Adopt("sww_standby_mirror_errors_total", &s.mirrorErrors)
	reg.Adopt("sww_standby_zombie_fenced_total", &s.zombieSeen)
	reg.GaugeFunc("sww_standby_silence_seconds", func() float64 { return s.sinceHeard().Seconds() })
}
