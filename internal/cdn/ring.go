package cdn

// Consistent-hash placement for the live edge tier: every cacheable
// path has one owner edge, chosen by walking a ring of virtual node
// points. Adding or removing an edge moves only the keys in the arcs
// that node's points covered (~1/N of the keyspace), so an edge death
// reshards its keys onto the survivors without disturbing placements
// that were already correct — the property that keeps a failover from
// turning into a fleet-wide cold cache.

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultRingReplicas is the virtual-node count per edge. 64 points
// per node keeps the worst-case ownership imbalance within a few
// percent for small fleets while the ring stays tiny.
const DefaultRingReplicas = 64

type ringPoint struct {
	hash uint64
	node string
}

// A Ring is a consistent-hash ring over named nodes. The zero value
// is not usable; build one with NewRing. All methods are safe for
// concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	nodes    map[string]bool
}

// NewRing builds a ring with the given virtual-node replica count
// (<= 0 means DefaultRingReplicas) and initial nodes.
func NewRing(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	r := &Ring{replicas: replicas, nodes: map[string]bool{}}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV avalanches poorly on short, similar strings ("edge1#0",
	// "edge1#1", …): raw sums cluster and one node ends up owning most
	// of the ring. A 64-bit mix finalizer scatters the points.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(node + "#" + strconv.Itoa(i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node and its points (idempotent). Keys it owned
// fall to the next point clockwise — their ring successor.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the current node names in unspecified order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	return out
}

// Len returns the node count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Lookup returns the owner node for key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	owners := r.LookupN(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// LookupN returns up to n distinct nodes for key in ring order: the
// owner first, then the successors that would inherit the key if the
// nodes before them died. This is the client-side failover order.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
