package cdn

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("/page/%d", i)
	}
	return keys
}

// TestRingDeterminism: the same nodes and key always map to the same
// owner, regardless of insertion order — clients and edges built from
// the same peer list must agree on placement without coordination.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(0, "edge1", "edge2", "edge3")
	b := NewRing(0, "edge3", "edge1", "edge2")
	for _, k := range ringKeys(200) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("insertion order changed owner of %s: %s vs %s", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

// TestRingDistribution: with virtual nodes, ownership spreads across
// the fleet — no edge owns more than ~2× its fair share.
func TestRingDistribution(t *testing.T) {
	r := NewRing(0, "edge1", "edge2", "edge3")
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	fair := len(keys) / r.Len()
	for node, n := range counts {
		if n == 0 {
			t.Fatalf("%s owns nothing", node)
		}
		if n > 2*fair {
			t.Errorf("%s owns %d of %d keys (fair share %d)", node, n, len(keys), fair)
		}
	}
}

// TestRingMinimalResharding: removing one of three edges moves only
// that edge's keys; every key owned by a survivor stays put. This is
// the property that keeps an edge death from cold-starting the whole
// fleet's caches.
func TestRingMinimalResharding(t *testing.T) {
	r := NewRing(0, "edge1", "edge2", "edge3")
	keys := ringKeys(1000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	r.Remove("edge2")
	moved := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after == "edge2" {
			t.Fatalf("removed node still owns %s", k)
		}
		if before[k] != "edge2" && after != before[k] {
			t.Errorf("%s moved %s → %s though its owner survived", k, before[k], after)
		}
		if before[k] == "edge2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("edge2 owned nothing before removal")
	}
}

// TestRingLookupN: the failover order starts with the owner, lists
// distinct nodes, and its second entry is exactly the owner after the
// first node dies — LookupN is the client's precomputed failover path.
func TestRingLookupN(t *testing.T) {
	r := NewRing(0, "edge1", "edge2", "edge3")
	for _, k := range ringKeys(200) {
		order := r.LookupN(k, 3)
		if len(order) != 3 {
			t.Fatalf("%s: got %d nodes", k, len(order))
		}
		seen := map[string]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("%s: duplicate node %s in %v", k, n, order)
			}
			seen[n] = true
		}
		if order[0] != r.Lookup(k) {
			t.Fatalf("%s: LookupN[0]=%s, Lookup=%s", k, order[0], r.Lookup(k))
		}
		// Simulate the owner dying: the new owner must be the old
		// second choice.
		r2 := NewRing(0, "edge1", "edge2", "edge3")
		r2.Remove(order[0])
		if got := r2.Lookup(k); got != order[1] {
			t.Fatalf("%s: after killing %s owner is %s, LookupN predicted %s", k, order[0], got, order[1])
		}
	}
}

// TestRingEmpty: lookups on an empty ring are nil/"" not panics.
func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if r.Lookup("/x") != "" {
		t.Fatal("empty ring returned an owner")
	}
	if got := r.LookupN("/x", 2); got != nil {
		t.Fatalf("empty ring LookupN = %v", got)
	}
	r.Add("only")
	if r.Lookup("/x") != "only" {
		t.Fatal("single-node ring must own everything")
	}
	if got := r.LookupN("/x", 5); len(got) != 1 {
		t.Fatalf("LookupN beyond fleet size = %v", got)
	}
}
