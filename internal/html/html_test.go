package html

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizerBasics(t *testing.T) {
	z := NewTokenizer(`<!DOCTYPE html><html lang="en"><body><p>Hi &amp; bye</p><br/><!--note--></body></html>`)
	var tokens []Token
	for {
		tok := z.Next()
		if tok.Type == ErrorToken {
			break
		}
		tokens = append(tokens, tok)
	}
	wantTypes := []TokenType{
		DoctypeToken, StartTagToken, StartTagToken, StartTagToken,
		TextToken, EndTagToken, SelfClosingTagToken, CommentToken,
		EndTagToken, EndTagToken,
	}
	if len(tokens) != len(wantTypes) {
		t.Fatalf("got %d tokens, want %d: %v", len(tokens), len(wantTypes), tokens)
	}
	for i, want := range wantTypes {
		if tokens[i].Type != want {
			t.Errorf("token %d = %v, want %v", i, tokens[i].Type, want)
		}
	}
	if tokens[1].Data != "html" {
		t.Errorf("tag name = %q", tokens[1].Data)
	}
	if v, _ := tokens[1].AttrValue("lang"); v != "en" {
		t.Errorf("lang = %q", v)
	}
	if tokens[4].Data != "Hi & bye" {
		t.Errorf("text = %q", tokens[4].Data)
	}
	if tokens[7].Data != "note" {
		t.Errorf("comment = %q", tokens[7].Data)
	}
}

func TestTokenizerAttributeForms(t *testing.T) {
	z := NewTokenizer(`<input type=text disabled value='a b' data-x="1&lt;2">`)
	tok := z.Next()
	if tok.Type != StartTagToken || tok.Data != "input" {
		t.Fatalf("token = %+v", tok)
	}
	cases := map[string]string{"type": "text", "disabled": "", "value": "a b", "data-x": "1<2"}
	for name, want := range cases {
		got, ok := tok.AttrValue(name)
		if !ok {
			t.Errorf("attribute %q missing", name)
		}
		if got != want {
			t.Errorf("%s = %q, want %q", name, got, want)
		}
	}
}

func TestTokenizerRawText(t *testing.T) {
	z := NewTokenizer(`<script>if (a < b && c > d) { x("</div>"); }</script><p>after</p>`)
	_ = z.Next() // <script>
	text := z.Next()
	if text.Type != TextToken || !strings.Contains(text.Data, "a < b && c > d") {
		t.Fatalf("script body = %+v", text)
	}
	// Note: like real tokenizers without escaping support, the body
	// ends at the first literal "</script", so the string containing
	// "</div>" stays inside the body.
	if !strings.Contains(text.Data, `</div>`) {
		t.Error("string content containing markup was split")
	}
	end := z.Next()
	if end.Type != EndTagToken || end.Data != "script" {
		t.Fatalf("end = %+v", end)
	}
}

func TestTokenizerBareLessThan(t *testing.T) {
	z := NewTokenizer(`a < b`)
	var text strings.Builder
	for {
		tok := z.Next()
		if tok.Type == ErrorToken {
			break
		}
		if tok.Type != TextToken {
			t.Fatalf("unexpected token %+v", tok)
		}
		text.WriteString(tok.Data)
	}
	if text.String() != "a < b" {
		t.Errorf("text = %q", text.String())
	}
}

func TestEntities(t *testing.T) {
	cases := map[string]string{
		"&amp;":           "&",
		"&lt;tag&gt;":     "<tag>",
		"&#65;&#x42;":     "AB",
		"&copy; 2025":     "© 2025",
		"&bogus;":         "&bogus;",
		"a &amp b":        "a &amp b", // unterminated
		"&mdash;&hellip;": "—…",
	}
	for in, want := range cases {
		if got := UnescapeString(in); got != want {
			t.Errorf("Unescape(%q) = %q, want %q", in, got, want)
		}
	}
	if got := EscapeString(`<a href="x">&'`); got != "&lt;a href=&quot;x&quot;&gt;&amp;&#39;" {
		t.Errorf("Escape = %q", got)
	}
	// Escape/unescape round trip.
	for _, s := range []string{"plain", `<>&"'`, "mixed <b>&amp;</b>"} {
		if got := UnescapeString(EscapeString(s)); got != s {
			t.Errorf("round trip %q = %q", s, got)
		}
	}
}

func TestParseTree(t *testing.T) {
	doc := Parse(`<html><body><div id="main" class="content wide"><p>One</p><p>Two</p><img src="x.jpg"></div></body></html>`)
	main := doc.ByID("main")
	if main == nil {
		t.Fatal("no #main")
	}
	if !main.HasClass("content") || !main.HasClass("wide") || main.HasClass("nope") {
		t.Error("class handling broken")
	}
	ps := doc.ByTag("p")
	if len(ps) != 2 {
		t.Fatalf("%d <p>, want 2", len(ps))
	}
	if ps[0].Text() != "One" || ps[1].Text() != "Two" {
		t.Errorf("p texts = %q, %q", ps[0].Text(), ps[1].Text())
	}
	imgs := doc.ByTag("img")
	if len(imgs) != 1 {
		t.Fatalf("%d <img>, want 1", len(imgs))
	}
	if imgs[0].FirstChild != nil {
		t.Error("void element has children")
	}
	if imgs[0].Parent != main {
		t.Error("img not child of #main")
	}
}

func TestParseImplicitClose(t *testing.T) {
	doc := Parse(`<ul><li>a<li>b<li>c</ul><p>x<p>y`)
	if got := len(doc.ByTag("li")); got != 3 {
		t.Errorf("%d <li>, want 3", got)
	}
	lis := doc.ByTag("li")
	for i, want := range []string{"a", "b", "c"} {
		if lis[i].Text() != want {
			t.Errorf("li[%d] = %q, want %q", i, lis[i].Text(), want)
		}
	}
	ps := doc.ByTag("p")
	if len(ps) != 2 || ps[0].Text() != "x" || ps[1].Text() != "y" {
		t.Errorf("implicit <p> close broken: %d", len(ps))
	}
}

func TestParseStrayEndTag(t *testing.T) {
	doc := Parse(`<div>a</span>b</div>`)
	div := doc.ByTag("div")[0]
	if div.Text() != "ab" {
		t.Errorf("text = %q, want ab", div.Text())
	}
}

func TestParseUnclosedElements(t *testing.T) {
	doc := Parse(`<div><p>text`)
	if len(doc.ByTag("div")) != 1 || len(doc.ByTag("p")) != 1 {
		t.Error("unclosed elements lost")
	}
	if doc.ByTag("p")[0].Text() != "text" {
		t.Error("text lost in unclosed element")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<!DOCTYPE html><html><head><title>T&amp;C</title></head><body><div class="generated-content" content-type="img" metadata="{&quot;prompt&quot;:&quot;a goldfish&quot;}"></div><p>para</p></body></html>`
	doc := Parse(src)
	out := RenderString(doc)
	// Parse the rendering again: the trees must be identical.
	doc2 := Parse(out)
	if RenderString(doc2) != out {
		t.Error("render is not a fixed point")
	}
	div := doc2.ByClass("generated-content")
	if len(div) != 1 {
		t.Fatalf("generated-content div lost: %d", len(div))
	}
	meta, _ := div[0].AttrValue("metadata")
	if meta != `{"prompt":"a goldfish"}` {
		t.Errorf("metadata = %q", meta)
	}
}

func TestRenderEscaping(t *testing.T) {
	n := NewElement("div", Attribute{Name: "title", Value: `He said "hi" & left`})
	n.AppendChild(NewText(`1 < 2 & 3 > 2`))
	out := RenderString(n)
	want := `<div title="He said &quot;hi&quot; &amp; left">1 &lt; 2 &amp; 3 &gt; 2</div>`
	if out != want {
		t.Errorf("render = %q\nwant    %q", out, want)
	}
	doc := Parse(out)
	if got := doc.ByTag("div")[0].Text(); got != `1 < 2 & 3 > 2` {
		t.Errorf("reparsed text = %q", got)
	}
}

func TestRenderScriptVerbatim(t *testing.T) {
	src := `<script>let x = 1 < 2 && "a";</script>`
	out := RenderString(Parse(src))
	if out != src {
		t.Errorf("script round trip = %q", out)
	}
}

func TestNodeManipulation(t *testing.T) {
	doc := Parse(`<div><span>old</span></div>`)
	div := doc.ByTag("div")[0]
	span := doc.ByTag("span")[0]

	img := NewElement("img", Attribute{Name: "src", Value: "gen/1.png"})
	div.ReplaceChild(span, img)
	if len(doc.ByTag("span")) != 0 || len(doc.ByTag("img")) != 1 {
		t.Fatal("ReplaceChild failed")
	}
	if span.Parent != nil {
		t.Error("old node still attached")
	}

	txt := NewText("caption")
	div.AppendChild(txt)
	if div.LastChild != txt || txt.PrevSibling != img {
		t.Error("AppendChild wiring wrong")
	}
	div.RemoveChild(img)
	if div.FirstChild != txt || txt.PrevSibling != nil {
		t.Error("RemoveChild wiring wrong")
	}

	clone := div.Clone()
	if clone.Parent != nil || RenderString(clone) != RenderString(div) {
		t.Error("Clone mismatch")
	}
	clone.AppendChild(NewText("extra"))
	if RenderString(clone) == RenderString(div) {
		t.Error("Clone shares structure with original")
	}
}

func TestFindHelpers(t *testing.T) {
	doc := Parse(`<div class="a"><div class="b"><i>x</i></div></div><div class="b">y</div>`)
	bs := doc.ByClass("b")
	if len(bs) != 2 {
		t.Fatalf("%d .b, want 2", len(bs))
	}
	first := doc.Find(func(n *Node) bool { return n.HasClass("b") })
	if first == nil || first.Text() != "x" {
		t.Error("Find returned wrong node")
	}
	if doc.ByID("missing") != nil {
		t.Error("ByID should return nil for missing id")
	}
}

// TestParseRenderPropertyRandom builds random trees, renders them and
// reparses: structure must survive.
func TestParseRenderPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Only tags without implicit-close rules: nesting <p> in <p> is
	// invalid HTML and legitimately does not round-trip.
	tags := []string{"div", "span", "section", "em", "article"}
	texts := []string{"hello", "a & b", `quote "x"`, "1<2", "plain text", "déjà vu"}

	var build func(depth int) *Node
	var count int
	build = func(depth int) *Node {
		n := NewElement(tags[rng.Intn(len(tags))])
		count++
		if rng.Intn(3) == 0 {
			n.SetAttr("class", "c"+texts[rng.Intn(len(texts))])
		}
		kids := rng.Intn(4)
		if depth > 4 {
			kids = 0
		}
		for i := 0; i < kids; i++ {
			if rng.Intn(2) == 0 {
				n.AppendChild(NewText(texts[rng.Intn(len(texts))]))
			} else {
				n.AppendChild(build(depth + 1))
			}
		}
		return n
	}
	for iter := 0; iter < 100; iter++ {
		count = 0
		root := build(0)
		out := RenderString(root)
		doc := Parse(out)
		if len(doc.FindAll(func(*Node) bool { return true })) != count {
			t.Fatalf("iter %d: element count mismatch\nhtml: %s", iter, out)
		}
		if RenderString(doc) != out {
			t.Fatalf("iter %d: render not stable\nhtml: %s", iter, out)
		}
	}
}

func TestParseFragment(t *testing.T) {
	nodes := ParseFragment(`<p>a</p><p>b</p>`)
	if len(nodes) != 2 {
		t.Fatalf("%d nodes, want 2", len(nodes))
	}
	for _, n := range nodes {
		if n.Parent != nil {
			t.Error("fragment node still attached")
		}
	}
}

func BenchmarkParseWikipediaLikePage(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html><html><head><title>Gallery</title></head><body><div class="gallery">`)
	for i := 0; i < 49; i++ {
		sb.WriteString(`<div class="item"><img src="/images/landscape.jpg" width="224" height="224"><span class="caption">A scenic landscape photograph with mountains &amp; lakes</span></div>`)
	}
	sb.WriteString(`</div></body></html>`)
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := Parse(src)
		if len(doc.ByTag("img")) != 49 {
			b.Fatal("parse lost images")
		}
	}
}

func BenchmarkRender(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(`<html><body>`)
	for i := 0; i < 100; i++ {
		sb.WriteString(`<div class="x"><p>text &amp; more</p></div>`)
	}
	sb.WriteString(`</body></html>`)
	doc := Parse(sb.String())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if RenderString(doc) == "" {
			b.Fatal("empty render")
		}
	}
}

// TestEscapeQuickProperty: escaping then unescaping is identity for
// every string, and the escaped form is safe in text context.
func TestEscapeQuickProperty(t *testing.T) {
	f := func(s string) bool {
		esc := EscapeString(s)
		if strings.ContainsAny(esc, "<>") {
			return false
		}
		return UnescapeString(esc) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestTextNodeQuickProperty: any string stored in a text node
// round-trips through render + parse.
func TestTextNodeQuickProperty(t *testing.T) {
	f := func(s string) bool {
		n := NewElement("div")
		n.AppendChild(NewText(s))
		doc := Parse(RenderString(n))
		divs := doc.ByTag("div")
		return len(divs) == 1 && divs[0].Text() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
