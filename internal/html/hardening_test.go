package html

import (
	"strings"
	"testing"
)

// TestDeepNestingBounded parses adversarially deep markup and checks
// the tree depth stays at the parser's cap, so the depth-recursive
// consumers (Render, Clone, Walk) cannot be driven into stack
// exhaustion by wire input.
func TestDeepNestingBounded(t *testing.T) {
	const n = 100_000
	src := strings.Repeat("<div>", n) + "x" + strings.Repeat("</div>", n)
	doc := Parse(src)

	depth, maxDepth := 0, 0
	var walk func(*Node, int)
	walk = func(nd *Node, d int) {
		if d > maxDepth {
			maxDepth = d
		}
		for c := nd.FirstChild; c != nil; c = c.NextSibling {
			walk(c, d+1)
		}
	}
	_ = depth
	walk(doc, 0)
	if maxDepth > maxParseDepth+1 {
		t.Fatalf("tree depth %d exceeds cap %d", maxDepth, maxParseDepth)
	}

	// The flattened tree must still round-trip through the recursive
	// consumers without blowing the stack.
	out := RenderString(doc)
	if !strings.Contains(out, "x") {
		t.Fatalf("deep-nesting text content lost")
	}
	Parse(out)
	doc.Clone()
}

// TestDeepNestingKeepsContent: elements past the cap are retained as
// siblings, not dropped — the page still renders all its markup.
func TestDeepNestingKeepsContent(t *testing.T) {
	var b strings.Builder
	for i := 0; i < maxParseDepth+50; i++ {
		b.WriteString("<section>")
	}
	b.WriteString(`<div class="generated-content" content-type="img" metadata="{}">`)
	doc := Parse(b.String())
	if got := len(doc.ByClass("generated-content")); got != 1 {
		t.Fatalf("generated-content divs found = %d, want 1", got)
	}
	if got := len(doc.ByTag("section")); got != maxParseDepth+50 {
		t.Fatalf("sections = %d, want %d", got, maxParseDepth+50)
	}
}
