// Package html provides an HTML tokenizer, a DOM-like node tree, a
// parser, and a serializer, sufficient for the SWW page pipeline: it
// round-trips real-world markup, exposes attributes for the
// generated-content divs of paper §4.1, and supports structural
// rewriting (replacing prompt divs with generated media references).
//
// It is deliberately not a full WHATWG-conformant parser: error
// recovery is simple (unclosed tags close at their parent's end) and
// no implicit tbody/head/body synthesis is performed. Markup produced
// by the workload generators and by real static sites parses
// faithfully.
package html

import (
	"fmt"
	"strings"
)

// A TokenType classifies a lexer token.
type TokenType int

const (
	// ErrorToken means the tokenizer encountered the end of input.
	ErrorToken TokenType = iota
	// TextToken is a run of character data.
	TextToken
	// StartTagToken is <name attr="v">.
	StartTagToken
	// EndTagToken is </name>.
	EndTagToken
	// SelfClosingTagToken is <name/>.
	SelfClosingTagToken
	// CommentToken is <!-- ... -->.
	CommentToken
	// DoctypeToken is <!DOCTYPE ...>.
	DoctypeToken
)

func (t TokenType) String() string {
	switch t {
	case ErrorToken:
		return "Error"
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	}
	return fmt.Sprintf("TokenType(%d)", int(t))
}

// An Attribute is a name="value" pair on a tag.
type Attribute struct {
	Name, Value string
}

// A Token is one lexical element of the input.
type Token struct {
	Type TokenType
	// Data is the tag name (for tags), text content (for text), or
	// comment/doctype body.
	Data string
	Attr []Attribute
}

// AttrValue returns the value of the named attribute and whether it
// is present.
func (t Token) AttrValue(name string) (string, bool) {
	for _, a := range t.Attr {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// rawTextElements are elements whose content is not markup.
var rawTextElements = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
}

// A Tokenizer splits HTML input into tokens.
type Tokenizer struct {
	src string
	pos int
	// rawEnd, when nonempty, means we are inside a raw text element
	// and must scan for its specific end tag.
	rawEnd string
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token. ErrorToken signals end of input.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.src) {
		return Token{Type: ErrorToken}
	}
	if z.rawEnd != "" {
		return z.rawText()
	}
	if z.src[z.pos] == '<' {
		return z.tag()
	}
	return z.text()
}

func (z *Tokenizer) text() Token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: UnescapeString(z.src[start:z.pos])}
}

// rawText scans until the matching </tag> of a raw text element.
func (z *Tokenizer) rawText() Token {
	end := "</" + z.rawEnd
	lower := strings.ToLower(z.src[z.pos:])
	idx := strings.Index(lower, end)
	if idx < 0 {
		data := z.src[z.pos:]
		z.pos = len(z.src)
		z.rawEnd = ""
		return Token{Type: TextToken, Data: data}
	}
	if idx == 0 {
		// Emit the end tag itself.
		z.rawEnd = ""
		return z.tag()
	}
	data := z.src[z.pos : z.pos+idx]
	z.pos += idx
	z.rawEnd = ""
	return Token{Type: TextToken, Data: data}
}

func (z *Tokenizer) tag() Token {
	// Invariant: src[pos] == '<'.
	rest := z.src[z.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return z.comment()
	case strings.HasPrefix(rest, "<!") || strings.HasPrefix(rest, "<?"):
		return z.markupDecl()
	case strings.HasPrefix(rest, "</"):
		return z.endTag()
	}
	if len(rest) < 2 || !isNameStart(rest[1]) {
		// A bare '<' is text.
		z.pos++
		return Token{Type: TextToken, Data: "<"}
	}
	return z.startTag()
}

func (z *Tokenizer) comment() Token {
	z.pos += len("<!--")
	idx := strings.Index(z.src[z.pos:], "-->")
	var data string
	if idx < 0 {
		data = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		data = z.src[z.pos : z.pos+idx]
		z.pos += idx + len("-->")
	}
	return Token{Type: CommentToken, Data: data}
}

func (z *Tokenizer) markupDecl() Token {
	start := z.pos
	idx := strings.IndexByte(z.src[z.pos:], '>')
	if idx < 0 {
		z.pos = len(z.src)
		return Token{Type: CommentToken, Data: z.src[start:]}
	}
	decl := z.src[start+2 : start+idx]
	z.pos += idx + 1
	if len(decl) >= 7 && strings.EqualFold(decl[:7], "DOCTYPE") {
		return Token{Type: DoctypeToken, Data: strings.TrimSpace(decl[7:])}
	}
	return Token{Type: CommentToken, Data: decl}
}

func (z *Tokenizer) endTag() Token {
	z.pos += 2
	name := z.readName()
	// Skip anything up to '>' (stray attributes on end tags are
	// ignored, as in browsers).
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++
	}
	return Token{Type: EndTagToken, Data: name}
}

func (z *Tokenizer) startTag() Token {
	z.pos++ // consume '<'
	name := z.readName()
	tok := Token{Type: StartTagToken, Data: name}
	for {
		z.skipSpace()
		if z.pos >= len(z.src) {
			break
		}
		c := z.src[z.pos]
		if c == '>' {
			z.pos++
			break
		}
		if c == '/' {
			z.pos++
			z.skipSpace()
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				tok.Type = SelfClosingTagToken
			}
			break
		}
		attr, ok := z.readAttribute()
		if !ok {
			break
		}
		tok.Attr = append(tok.Attr, attr)
	}
	if tok.Type == StartTagToken && rawTextElements[name] {
		z.rawEnd = name
	}
	return tok
}

func (z *Tokenizer) readName() string {
	start := z.pos
	for z.pos < len(z.src) && isNameChar(z.src[z.pos]) {
		z.pos++
	}
	return strings.ToLower(z.src[start:z.pos])
}

func (z *Tokenizer) readAttribute() (Attribute, bool) {
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if c == '=' || c == '>' || c == '/' || isSpace(c) {
			break
		}
		z.pos++
	}
	if z.pos == start {
		// Unparseable character; skip it to guarantee progress.
		z.pos++
		return Attribute{}, false
	}
	attr := Attribute{Name: strings.ToLower(z.src[start:z.pos])}
	z.skipSpace()
	if z.pos >= len(z.src) || z.src[z.pos] != '=' {
		return attr, true // boolean attribute
	}
	z.pos++
	z.skipSpace()
	if z.pos >= len(z.src) {
		return attr, true
	}
	switch q := z.src[z.pos]; q {
	case '"', '\'':
		z.pos++
		vstart := z.pos
		for z.pos < len(z.src) && z.src[z.pos] != q {
			z.pos++
		}
		attr.Value = UnescapeString(z.src[vstart:z.pos])
		if z.pos < len(z.src) {
			z.pos++
		}
	default:
		vstart := z.pos
		for z.pos < len(z.src) && !isSpace(z.src[z.pos]) && z.src[z.pos] != '>' {
			z.pos++
		}
		attr.Value = UnescapeString(z.src[vstart:z.pos])
	}
	return attr, true
}

func (z *Tokenizer) skipSpace() {
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}
