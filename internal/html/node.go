package html

import "strings"

// A NodeType classifies a tree node.
type NodeType int

const (
	// DocumentNode is the synthetic root of a parsed page.
	DocumentNode NodeType = iota
	// ElementNode is a tag with optional children.
	ElementNode
	// TextNode is character data.
	TextNode
	// CommentNode is <!-- ... -->.
	CommentNode
	// DoctypeNode is <!DOCTYPE ...>.
	DoctypeNode
)

// A Node is one node in the document tree.
type Node struct {
	Type NodeType
	// Data is the tag name for elements, the text for text nodes, and
	// the body for comments/doctypes.
	Data string
	Attr []Attribute

	Parent      *Node
	FirstChild  *Node
	LastChild   *Node
	PrevSibling *Node
	NextSibling *Node
}

// voidElements never have children or end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"source": true, "track": true, "wbr": true,
}

// NewElement returns a detached element node.
func NewElement(tag string, attrs ...Attribute) *Node {
	return &Node{Type: ElementNode, Data: tag, Attr: attrs}
}

// NewText returns a detached text node.
func NewText(text string) *Node {
	return &Node{Type: TextNode, Data: text}
}

// Attr lookup. ok reports presence.
func (n *Node) AttrValue(name string) (string, bool) {
	for _, a := range n.Attr {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets or replaces an attribute.
func (n *Node) SetAttr(name, value string) {
	for i, a := range n.Attr {
		if a.Name == name {
			n.Attr[i].Value = value
			return
		}
	}
	n.Attr = append(n.Attr, Attribute{Name: name, Value: value})
}

// RemoveAttr deletes an attribute if present.
func (n *Node) RemoveAttr(name string) {
	for i, a := range n.Attr {
		if a.Name == name {
			n.Attr = append(n.Attr[:i], n.Attr[i+1:]...)
			return
		}
	}
}

// HasClass reports whether the element's class list contains name.
func (n *Node) HasClass(name string) bool {
	classes, _ := n.AttrValue("class")
	for _, c := range strings.Fields(classes) {
		if c == name {
			return true
		}
	}
	return false
}

// AppendChild attaches c as n's last child. c must be detached.
func (n *Node) AppendChild(c *Node) {
	if c.Parent != nil {
		panic("html: AppendChild of attached node")
	}
	c.Parent = n
	c.PrevSibling = n.LastChild
	if n.LastChild != nil {
		n.LastChild.NextSibling = c
	} else {
		n.FirstChild = c
	}
	n.LastChild = c
}

// RemoveChild detaches c from n.
func (n *Node) RemoveChild(c *Node) {
	if c.Parent != n {
		panic("html: RemoveChild of non-child")
	}
	if c.PrevSibling != nil {
		c.PrevSibling.NextSibling = c.NextSibling
	} else {
		n.FirstChild = c.NextSibling
	}
	if c.NextSibling != nil {
		c.NextSibling.PrevSibling = c.PrevSibling
	} else {
		n.LastChild = c.PrevSibling
	}
	c.Parent, c.PrevSibling, c.NextSibling = nil, nil, nil
}

// ReplaceChild swaps old (a child of n) for repl (detached).
func (n *Node) ReplaceChild(old, repl *Node) {
	if old.Parent != n {
		panic("html: ReplaceChild of non-child")
	}
	if repl.Parent != nil {
		panic("html: ReplaceChild with attached node")
	}
	repl.Parent = n
	repl.PrevSibling = old.PrevSibling
	repl.NextSibling = old.NextSibling
	if old.PrevSibling != nil {
		old.PrevSibling.NextSibling = repl
	} else {
		n.FirstChild = repl
	}
	if old.NextSibling != nil {
		old.NextSibling.PrevSibling = repl
	} else {
		n.LastChild = repl
	}
	old.Parent, old.PrevSibling, old.NextSibling = nil, nil, nil
}

// Children returns the direct children as a slice (snapshot).
func (n *Node) Children() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		out = append(out, c)
	}
	return out
}

// Walk visits n and all descendants in document order. Returning
// false from fn prunes the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		c.Walk(fn)
	}
}

// Find returns the first descendant element (including n itself)
// satisfying pred, in document order.
func (n *Node) Find(pred func(*Node) bool) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if found != nil {
			return false
		}
		if m.Type == ElementNode && pred(m) {
			found = m
			return false
		}
		return true
	})
	return found
}

// FindAll returns every descendant element satisfying pred.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Type == ElementNode && pred(m) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// ByTag returns all elements with the given tag name.
func (n *Node) ByTag(tag string) []*Node {
	return n.FindAll(func(m *Node) bool { return m.Data == tag })
}

// ByClass returns all elements whose class list contains name.
func (n *Node) ByClass(name string) []*Node {
	return n.FindAll(func(m *Node) bool { return m.HasClass(name) })
}

// ByID returns the first element with the given id, or nil.
func (n *Node) ByID(id string) *Node {
	return n.Find(func(m *Node) bool {
		v, ok := m.AttrValue("id")
		return ok && v == id
	})
}

// Text returns the concatenated text content of the subtree.
func (n *Node) Text() string {
	var b strings.Builder
	n.Walk(func(m *Node) bool {
		if m.Type == TextNode {
			b.WriteString(m.Data)
		}
		return true
	})
	return b.String()
}

// Clone deep-copies the subtree rooted at n. The copy is detached.
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Data: n.Data}
	if n.Attr != nil {
		c.Attr = append([]Attribute(nil), n.Attr...)
	}
	for k := n.FirstChild; k != nil; k = k.NextSibling {
		c.AppendChild(k.Clone())
	}
	return c
}
