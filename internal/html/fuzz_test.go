package html

// FuzzPromptPageParse round-trips arbitrary markup through the parser
// and its depth-recursive consumers (Render, Clone, query helpers).
// Parse never fails by contract, so the properties are: no panic, no
// stack exhaustion, and a tree depth bounded by the parser cap. Seed
// corpus in testdata/fuzz/FuzzPromptPageParse.

import (
	"strings"
	"testing"
)

func FuzzPromptPageParse(f *testing.F) {
	f.Add(`<html><body><div class="generated-content" content-type="img" metadata='{"prompt":"a city","name":"hero"}'></div></body></html>`)
	f.Add(strings.Repeat("<div>", 2000) + "deep" + strings.Repeat("</div>", 2000))
	f.Add(`<p>unclosed <b>tags <i>every<where`)
	f.Add(`<!-- comment --><!DOCTYPE html><img src=x><br/><p>&amp;&lt;&#65;&bogus;`)
	f.Add(`</div></p></html>stray end tags`)
	f.Add("<div class='generated-content' metadata='{\"broken\":'>text</div>")

	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)

		maxDepth := 0
		var walk func(*Node, int)
		walk = func(n *Node, d int) {
			if d > maxDepth {
				maxDepth = d
			}
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				walk(c, d+1)
			}
		}
		walk(doc, 0)
		if maxDepth > maxParseDepth+1 {
			t.Fatalf("tree depth %d exceeds parser cap %d", maxDepth, maxParseDepth)
		}

		// The recursive consumers must survive whatever Parse built,
		// and the serialized form must itself reparse.
		out := RenderString(doc)
		doc.Clone()
		doc.ByClass("generated-content")
		doc.ByTag("div")
		Parse(out)
	})
}
