package html

import (
	"strconv"
	"strings"
)

// namedEntities covers the entities that appear in practice on the
// pages SWW processes. Unknown entities pass through verbatim, which
// matches browser behaviour for unterminated ampersands.
var namedEntities = map[string]rune{
	"amp":    '&',
	"lt":     '<',
	"gt":     '>',
	"quot":   '"',
	"apos":   '\'',
	"nbsp":   ' ',
	"copy":   '©',
	"reg":    '®',
	"trade":  '™',
	"hellip": '…',
	"mdash":  '—',
	"ndash":  '–',
	"lsquo":  '‘',
	"rsquo":  '’',
	"ldquo":  '“',
	"rdquo":  '”',
	"deg":    '°',
	"times":  '×',
	"middot": '·',
	"bull":   '•',
	"eacute": 'é',
	"egrave": 'è',
	"uuml":   'ü',
	"ouml":   'ö',
	"auml":   'ä',
	"szlig":  'ß',
	"ccedil": 'ç',
	"aring":  'å',
}

// UnescapeString replaces HTML entities with their characters.
func UnescapeString(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		// Find a terminating ';' within a plausible distance.
		end := -1
		for j := i + 1; j < len(s) && j < i+12; j++ {
			if s[j] == ';' {
				end = j
				break
			}
		}
		if end < 0 {
			b.WriteByte('&')
			i++
			continue
		}
		name := s[i+1 : end]
		if r, ok := decodeEntity(name); ok {
			b.WriteRune(r)
			i = end + 1
			continue
		}
		b.WriteByte('&')
		i++
	}
	return b.String()
}

func decodeEntity(name string) (rune, bool) {
	if name == "" {
		return 0, false
	}
	if name[0] == '#' {
		num := name[1:]
		base := 10
		if len(num) > 1 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		v, err := strconv.ParseInt(num, base, 32)
		if err != nil || v <= 0 || v > 0x10ffff {
			return 0, false
		}
		return rune(v), true
	}
	r, ok := namedEntities[name]
	return r, ok
}

// EscapeString escapes the five characters that are unsafe in text
// and attribute contexts.
func EscapeString(s string) string {
	if !strings.ContainsAny(s, `&<>"'`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		case '\'':
			b.WriteString("&#39;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
