package html

// maxParseDepth caps the open-element stack. Real pages nest tens of
// elements deep; adversarial input (<div><div><div>… repeated for the
// whole body) would otherwise build a tree whose depth-recursive
// consumers — Render, Walk, Clone — exhaust the goroutine stack.
// Elements opened beyond the cap are kept as childless siblings, the
// same recovery browsers apply to their own depth limits.
const maxParseDepth = 512

// Parse builds a node tree from src. It never fails: malformed markup
// degrades to the browser-like recoveries implemented here (unclosed
// elements close with their ancestors; stray end tags are dropped;
// nesting beyond maxParseDepth flattens instead of growing the tree).
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode}
	z := NewTokenizer(src)
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	for {
		tok := z.Next()
		switch tok.Type {
		case ErrorToken:
			return doc

		case TextToken:
			top().AppendChild(NewText(tok.Data))

		case CommentToken:
			top().AppendChild(&Node{Type: CommentNode, Data: tok.Data})

		case DoctypeToken:
			top().AppendChild(&Node{Type: DoctypeNode, Data: tok.Data})

		case SelfClosingTagToken:
			top().AppendChild(NewElement(tok.Data, tok.Attr...))

		case StartTagToken:
			// <p> and <li> auto-close a preceding sibling of the same
			// kind, the most common implicit-close cases in real pages.
			if tok.Data == "p" || tok.Data == "li" {
				if top().Type == ElementNode && top().Data == tok.Data {
					stack = stack[:len(stack)-1]
				}
			}
			el := NewElement(tok.Data, tok.Attr...)
			top().AppendChild(el)
			if !voidElements[tok.Data] && len(stack) < maxParseDepth {
				stack = append(stack, el)
			}

		case EndTagToken:
			// Close the nearest matching open element; ignore stray
			// end tags that match nothing.
			for i := len(stack) - 1; i > 0; i-- {
				if stack[i].Type == ElementNode && stack[i].Data == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
}

// ParseFragment parses src and returns the top-level nodes, without
// the synthetic document wrapper.
func ParseFragment(src string) []*Node {
	doc := Parse(src)
	kids := doc.Children()
	for _, k := range kids {
		doc.RemoveChild(k)
	}
	return kids
}
