package html

import (
	"io"
	"strings"
)

// Render serializes the tree rooted at n to w.
func Render(w io.Writer, n *Node) error {
	var b strings.Builder
	render(&b, n)
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderString serializes the tree rooted at n.
func RenderString(n *Node) string {
	var b strings.Builder
	render(&b, n)
	return b.String()
}

func render(b *strings.Builder, n *Node) {
	switch n.Type {
	case DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			render(b, c)
		}

	case DoctypeNode:
		b.WriteString("<!DOCTYPE ")
		b.WriteString(n.Data)
		b.WriteString(">")

	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")

	case TextNode:
		if n.Parent != nil && n.Parent.Type == ElementNode && rawTextElements[n.Parent.Data] {
			b.WriteString(n.Data) // raw text is emitted verbatim
			return
		}
		b.WriteString(EscapeString(n.Data))

	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Data)
		for _, a := range n.Attr {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			if a.Value != "" || strings.ContainsAny(a.Name, "=") {
				b.WriteString(`="`)
				b.WriteString(EscapeString(a.Value))
				b.WriteByte('"')
			}
		}
		b.WriteByte('>')
		if voidElements[n.Data] {
			return
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			render(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Data)
		b.WriteByte('>')
	}
}
