package quic

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Stream identifier semantics, RFC 9000 §2.1: the two least
// significant bits carry the initiator and directionality.
const (
	dirClientBidi = 0x0
	dirServerBidi = 0x1
	dirClientUni  = 0x2
	dirServerUni  = 0x3
)

// Mux frame types on the underlying reliable connection.
const (
	frameStream = 0x0 // streamID, flags(fin), length, data
	frameWindow = 0x1 // streamID, credit
	frameReset  = 0x2 // streamID, error code
	frameClose  = 0x3 // error code (connection level)
)

const (
	// streamWindow is the per-stream receive window.
	streamWindow = 256 << 10
	// maxMuxFrame bounds one STREAM frame's payload.
	maxMuxFrame = 16 << 10
)

// ErrSessionClosed is returned once the session is gone.
var ErrSessionClosed = errors.New("quic: session closed")

// A Session multiplexes QUIC-shaped streams over a reliable
// transport.
type Session struct {
	nc       net.Conn
	isClient bool

	wmu  sync.Mutex // serializes mux frame writes and guards wbuf
	wbuf []byte     // mux frame assembly scratch, reused across writes

	mu       sync.Mutex
	streams  map[uint64]*Stream
	nextBidi uint64
	nextUni  uint64
	closed   bool
	closeErr error

	acceptBidi chan *Stream
	acceptUni  chan *Stream
	done       chan struct{}
}

// NewSession starts a session over nc. The read loop runs until the
// transport dies or Close is called.
func NewSession(nc net.Conn, isClient bool) *Session {
	s := &Session{
		nc:         nc,
		isClient:   isClient,
		streams:    map[uint64]*Stream{},
		acceptBidi: make(chan *Stream, 32),
		acceptUni:  make(chan *Stream, 32),
		done:       make(chan struct{}),
	}
	if isClient {
		s.nextBidi = dirClientBidi
		s.nextUni = dirClientUni
	} else {
		s.nextBidi = dirServerBidi
		s.nextUni = dirServerUni
	}
	go s.readLoop()
	return s
}

// OpenStream opens a bidirectional stream.
func (s *Session) OpenStream() (*Stream, error) { return s.open(&s.nextBidi) }

// OpenUniStream opens a unidirectional (send-only) stream.
func (s *Session) OpenUniStream() (*Stream, error) { return s.open(&s.nextUni) }

func (s *Session) open(next *uint64) (*Stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, s.closeError()
	}
	id := *next
	*next += 4
	st := newQStream(s, id)
	s.streams[id] = st
	return st, nil
}

// AcceptStream waits for a peer-initiated bidirectional stream.
func (s *Session) AcceptStream() (*Stream, error) {
	select {
	case st := <-s.acceptBidi:
		return st, nil
	case <-s.done:
		return nil, s.closeError()
	}
}

// AcceptUniStream waits for a peer-initiated unidirectional stream.
func (s *Session) AcceptUniStream() (*Stream, error) {
	select {
	case st := <-s.acceptUni:
		return st, nil
	case <-s.done:
		return nil, s.closeError()
	}
}

func (s *Session) closeError() error {
	if s.closeErr != nil {
		return s.closeErr
	}
	return ErrSessionClosed
}

// Close tears the session down, sending a connection-close frame.
func (s *Session) Close() error {
	s.wmu.Lock()
	buf := AppendVarint(nil, frameClose)
	buf = AppendVarint(buf, 0)
	s.nc.Write(buf)
	s.wmu.Unlock()
	s.teardown(nil)
	return nil
}

func (s *Session) teardown(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if err == nil {
		err = ErrSessionClosed
	}
	s.closeErr = err
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.mu.Unlock()
	for _, st := range streams {
		st.fail(err)
	}
	close(s.done)
	s.nc.Close()
}

func (s *Session) readLoop() {
	r := &connReader{nc: s.nc}
	for {
		if err := s.readFrame(r); err != nil {
			s.teardown(err)
			return
		}
	}
}

// connReader adapts the net.Conn with a small buffer for varint
// parsing.
type connReader struct {
	nc  net.Conn
	buf bytes.Reader
	tmp [4096]byte
}

func (c *connReader) Read(p []byte) (int, error) {
	for c.buf.Len() == 0 {
		n, err := c.nc.Read(c.tmp[:])
		if n > 0 {
			c.buf.Reset(append([]byte(nil), c.tmp[:n]...))
			break
		}
		if err != nil {
			return 0, err
		}
	}
	return c.buf.Read(p)
}

func (s *Session) readFrame(r io.Reader) error {
	ftype, err := ReadVarintFrom(r)
	if err != nil {
		return err
	}
	switch ftype {
	case frameStream:
		id, err := ReadVarintFrom(r)
		if err != nil {
			return err
		}
		var flags [1]byte
		if _, err := io.ReadFull(r, flags[:]); err != nil {
			return err
		}
		length, err := ReadVarintFrom(r)
		if err != nil {
			return err
		}
		if length > streamWindow {
			return fmt.Errorf("quic: stream frame of %d bytes", length)
		}
		data := make([]byte, length)
		if _, err := io.ReadFull(r, data); err != nil {
			return err
		}
		st := s.streamFor(id)
		if st == nil {
			return nil // reset or unknown: drop
		}
		return st.deliver(data, flags[0]&1 != 0)

	case frameWindow:
		id, err := ReadVarintFrom(r)
		if err != nil {
			return err
		}
		credit, err := ReadVarintFrom(r)
		if err != nil {
			return err
		}
		s.mu.Lock()
		st := s.streams[id]
		s.mu.Unlock()
		if st != nil {
			st.addCredit(int64(credit))
		}
		return nil

	case frameReset:
		id, err := ReadVarintFrom(r)
		if err != nil {
			return err
		}
		code, err := ReadVarintFrom(r)
		if err != nil {
			return err
		}
		s.mu.Lock()
		st := s.streams[id]
		delete(s.streams, id)
		s.mu.Unlock()
		if st != nil {
			st.fail(fmt.Errorf("quic: stream %d reset by peer (code %d)", id, code))
		}
		return nil

	case frameClose:
		code, err := ReadVarintFrom(r)
		if err != nil {
			return err
		}
		return fmt.Errorf("quic: connection closed by peer (code %d)", code)

	default:
		return fmt.Errorf("quic: unknown mux frame type %d", ftype)
	}
}

// streamFor resolves or admits the stream a STREAM frame targets.
func (s *Session) streamFor(id uint64) *Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[id]; ok {
		return st
	}
	if !s.remoteInitiated(id) || s.closed {
		return nil
	}
	st := newQStream(s, id)
	s.streams[id] = st
	// Hand peer-initiated streams to the accept queues; drop when the
	// application is not accepting (backpressure).
	q := s.acceptBidi
	if id&0x2 != 0 {
		q = s.acceptUni
	}
	select {
	case q <- st:
	default:
		delete(s.streams, id)
		return nil
	}
	return st
}

func (s *Session) remoteInitiated(id uint64) bool {
	clientInitiated := id&0x1 == 0
	return clientInitiated != s.isClient
}

// writeStreamFrame emits one STREAM frame. Assembly reuses the
// session's wmu-guarded scratch: nc.Write completes before the lock
// is released, so the buffer is free again for the next frame.
func (s *Session) writeStreamFrame(id uint64, fin bool, data []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	buf := AppendVarint(s.wbuf[:0], frameStream)
	buf = AppendVarint(buf, id)
	var flags byte
	if fin {
		flags = 1
	}
	buf = append(buf, flags)
	buf = AppendVarint(buf, uint64(len(data)))
	buf = append(buf, data...)
	s.wbuf = buf
	_, err := s.nc.Write(buf)
	return err
}

func (s *Session) writeWindow(id uint64, credit int64) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	buf := AppendVarint(s.wbuf[:0], frameWindow)
	buf = AppendVarint(buf, id)
	buf = AppendVarint(buf, uint64(credit))
	s.wbuf = buf
	s.nc.Write(buf)
}

func (s *Session) writeReset(id uint64, code uint64) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	buf := AppendVarint(s.wbuf[:0], frameReset)
	buf = AppendVarint(buf, id)
	buf = AppendVarint(buf, code)
	s.wbuf = buf
	s.nc.Write(buf)
}
