// Package quic provides the QUIC-like transport substrate beneath
// internal/http3: variable-length integers (RFC 9000 §16) and a
// stream-multiplexing session with QUIC stream-identifier semantics
// and credit-based flow control.
//
// Substitution note (see DESIGN.md): real QUIC runs over UDP with
// TLS 1.3, loss recovery and congestion control. The paper's §3.1
// interest is the HTTP/3 *mapping* — "similar use of SETTINGS under
// HTTP/3 can allow to advertise client-server GenAI capabilities" —
// which depends on stream multiplexing and the SETTINGS exchange, not
// on loss recovery. This package therefore multiplexes QUIC-shaped
// streams over a reliable net.Conn, preserving the identifier space,
// unidirectional streams and per-stream flow control that HTTP/3
// builds on.
package quic

import (
	"errors"
	"io"
)

// Varint bounds (RFC 9000 §16): 1, 2, 4 or 8 byte encodings with the
// two high bits of the first byte carrying the length.
const MaxVarint = 1<<62 - 1

// ErrVarintRange reports a value outside [0, 2^62).
var ErrVarintRange = errors.New("quic: varint out of range")

// AppendVarint appends the QUIC variable-length encoding of v.
func AppendVarint(dst []byte, v uint64) []byte {
	switch {
	case v < 1<<6:
		return append(dst, byte(v))
	case v < 1<<14:
		return append(dst, byte(v>>8)|0x40, byte(v))
	case v < 1<<30:
		return append(dst, byte(v>>24)|0x80, byte(v>>16), byte(v>>8), byte(v))
	case v <= MaxVarint:
		return append(dst,
			byte(v>>56)|0xc0, byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		panic(ErrVarintRange)
	}
}

// VarintLen returns the encoded length of v.
func VarintLen(v uint64) int {
	switch {
	case v < 1<<6:
		return 1
	case v < 1<<14:
		return 2
	case v < 1<<30:
		return 4
	default:
		return 8
	}
}

// ReadVarint decodes a varint from buf, returning the value and the
// remaining bytes.
func ReadVarint(buf []byte) (v uint64, rest []byte, err error) {
	if len(buf) == 0 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	length := 1 << (buf[0] >> 6)
	if len(buf) < length {
		return 0, nil, io.ErrUnexpectedEOF
	}
	v = uint64(buf[0] & 0x3f)
	for i := 1; i < length; i++ {
		v = v<<8 | uint64(buf[i])
	}
	return v, buf[length:], nil
}

// ReadVarintFrom decodes a varint from an io.Reader (used on stream
// boundaries where the length is not known in advance).
func ReadVarintFrom(r io.Reader) (uint64, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return 0, err
	}
	length := 1 << (first[0] >> 6)
	v := uint64(first[0] & 0x3f)
	if length == 1 {
		return v, nil
	}
	rest := make([]byte, length-1)
	if _, err := io.ReadFull(r, rest); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	for _, b := range rest {
		v = v<<8 | uint64(b)
	}
	return v, nil
}
