package quic

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

// A Stream is one multiplexed byte stream. Bidirectional streams are
// readable and writable on both ends; unidirectional streams are
// writable by their initiator and readable by the acceptor.
type Stream struct {
	s  *Session
	id uint64

	mu       sync.Mutex
	cond     *sync.Cond
	buf      bytes.Buffer
	finRecvd bool
	finSent  bool
	err      error

	// recvUnacked accumulates consumed bytes until a WINDOW frame is
	// due; recvBudget is what the peer may still send.
	recvUnacked int64
	recvBudget  int64

	// sendCredit is what we may still send.
	sendCredit int64
}

func newQStream(s *Session, id uint64) *Stream {
	st := &Stream{
		s:          s,
		id:         id,
		recvBudget: streamWindow,
		sendCredit: streamWindow,
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// ID returns the QUIC stream identifier.
func (st *Stream) ID() uint64 { return st.id }

// Unidirectional reports whether the stream is one-way.
func (st *Stream) Unidirectional() bool { return st.id&0x2 != 0 }

// deliver is called by the session read loop.
func (st *Stream) deliver(data []byte, fin bool) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if int64(len(data)) > st.recvBudget {
		return fmt.Errorf("quic: stream %d flow violation", st.id)
	}
	st.recvBudget -= int64(len(data))
	st.buf.Write(data)
	if fin {
		st.finRecvd = true
	}
	st.cond.Broadcast()
	return nil
}

func (st *Stream) addCredit(n int64) {
	st.mu.Lock()
	st.sendCredit += n
	st.cond.Broadcast()
	st.mu.Unlock()
}

func (st *Stream) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// Read implements io.Reader. It returns io.EOF after the peer's FIN
// once the buffer drains.
func (st *Stream) Read(p []byte) (int, error) {
	st.mu.Lock()
	for st.buf.Len() == 0 {
		if st.err != nil {
			err := st.err
			st.mu.Unlock()
			return 0, err
		}
		if st.finRecvd {
			st.mu.Unlock()
			return 0, io.EOF
		}
		st.cond.Wait()
	}
	n, _ := st.buf.Read(p)
	st.recvUnacked += int64(n)
	var replenish int64
	if st.recvUnacked >= streamWindow/2 {
		replenish = st.recvUnacked
		st.recvUnacked = 0
		st.recvBudget += replenish
	}
	st.mu.Unlock()
	if replenish > 0 {
		st.s.writeWindow(st.id, replenish)
	}
	return n, nil
}

// Write implements io.Writer, blocking on flow-control credit and
// splitting into mux frames.
func (st *Stream) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		st.mu.Lock()
		for st.sendCredit <= 0 && st.err == nil && !st.finSent {
			st.cond.Wait()
		}
		if st.err != nil {
			err := st.err
			st.mu.Unlock()
			return total, err
		}
		if st.finSent {
			st.mu.Unlock()
			return total, fmt.Errorf("quic: write after close on stream %d", st.id)
		}
		n := int64(len(p))
		if n > st.sendCredit {
			n = st.sendCredit
		}
		if n > maxMuxFrame {
			n = maxMuxFrame
		}
		st.sendCredit -= n
		st.mu.Unlock()

		if err := st.s.writeStreamFrame(st.id, false, p[:n]); err != nil {
			st.fail(err)
			return total, err
		}
		p = p[n:]
		total += int(n)
	}
	return total, nil
}

// Close sends FIN, half-closing the send direction.
func (st *Stream) Close() error {
	st.mu.Lock()
	if st.finSent {
		st.mu.Unlock()
		return nil
	}
	st.finSent = true
	st.mu.Unlock()
	return st.s.writeStreamFrame(st.id, true, nil)
}

// Reset aborts the stream with an error code.
func (st *Stream) Reset(code uint64) {
	st.s.writeReset(st.id, code)
	st.fail(fmt.Errorf("quic: stream %d reset locally (code %d)", st.id, code))
	st.s.mu.Lock()
	delete(st.s.streams, st.id)
	st.s.mu.Unlock()
}
