package quic

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

// TestVarintRFCVectors checks the worked examples of RFC 9000 §A.1.
func TestVarintRFCVectors(t *testing.T) {
	cases := []struct {
		v   uint64
		hex []byte
	}{
		{151288809941952652, []byte{0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c}},
		{494878333, []byte{0x9d, 0x7f, 0x3e, 0x7d}},
		{15293, []byte{0x7b, 0xbd}},
		{37, []byte{0x25}},
	}
	for _, c := range cases {
		got := AppendVarint(nil, c.v)
		if !bytes.Equal(got, c.hex) {
			t.Errorf("encode(%d) = %x, want %x", c.v, got, c.hex)
		}
		v, rest, err := ReadVarint(c.hex)
		if err != nil || v != c.v || len(rest) != 0 {
			t.Errorf("decode(%x) = %d, %v", c.hex, v, err)
		}
		rv, err := ReadVarintFrom(bytes.NewReader(c.hex))
		if err != nil || rv != c.v {
			t.Errorf("ReadVarintFrom(%x) = %d, %v", c.hex, rv, err)
		}
	}
}

func TestVarintProperty(t *testing.T) {
	f := func(v uint64) bool {
		v &= MaxVarint
		enc := AppendVarint(nil, v)
		if len(enc) != VarintLen(v) {
			return false
		}
		got, rest, err := ReadVarint(enc)
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintTruncated(t *testing.T) {
	if _, _, err := ReadVarint([]byte{0xc2, 0x19}); err == nil {
		t.Error("truncated 8-byte varint should fail")
	}
	if _, _, err := ReadVarint(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	if _, err := ReadVarintFrom(bytes.NewReader([]byte{0x40})); err == nil {
		t.Error("truncated 2-byte varint from reader should fail")
	}
}

func sessionPair(t *testing.T) (client, server *Session) {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	client = NewSession(cEnd, true)
	server = NewSession(sEnd, false)
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return client, server
}

func TestBidiStreamEcho(t *testing.T) {
	client, server := sessionPair(t)
	go func() {
		st, err := server.AcceptStream()
		if err != nil {
			t.Error(err)
			return
		}
		data, err := io.ReadAll(st)
		if err != nil {
			t.Error(err)
			return
		}
		st.Write(append([]byte("echo:"), data...))
		st.Close()
	}()

	st, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if st.ID() != 0 {
		t.Errorf("first client bidi stream id = %d, want 0", st.ID())
	}
	io.WriteString(st, "hello h3")
	st.Close()
	got, err := io.ReadAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:hello h3" {
		t.Errorf("got %q", got)
	}
}

func TestUniStream(t *testing.T) {
	client, server := sessionPair(t)
	st, err := client.OpenUniStream()
	if err != nil {
		t.Fatal(err)
	}
	if st.ID() != 2 || !st.Unidirectional() {
		t.Errorf("uni stream id = %d", st.ID())
	}
	go func() {
		io.WriteString(st, "control data")
		st.Close()
	}()
	acc, err := server.AcceptUniStream()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(acc)
	if err != nil || string(got) != "control data" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestStreamIDAllocation(t *testing.T) {
	client, server := sessionPair(t)
	c1, _ := client.OpenStream()
	c2, _ := client.OpenStream()
	cu, _ := client.OpenUniStream()
	if c1.ID() != 0 || c2.ID() != 4 || cu.ID() != 2 {
		t.Errorf("client ids = %d,%d,%d", c1.ID(), c2.ID(), cu.ID())
	}
	s1, _ := server.OpenStream()
	su, _ := server.OpenUniStream()
	if s1.ID() != 1 || su.ID() != 3 {
		t.Errorf("server ids = %d,%d", s1.ID(), su.ID())
	}
}

func TestLargeTransferFlowControl(t *testing.T) {
	client, server := sessionPair(t)
	const size = 2 << 20 // 2 MiB through a 256 KiB window
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	go func() {
		st, err := server.AcceptStream()
		if err != nil {
			t.Error(err)
			return
		}
		st.Write(payload)
		st.Close()
	}()
	st, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Trigger the server by sending the open (empty FIN reaches it).
	got, err := io.ReadAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted: %d bytes", len(got))
	}
}

func TestConcurrentStreams(t *testing.T) {
	client, server := sessionPair(t)
	go func() {
		for {
			st, err := server.AcceptStream()
			if err != nil {
				return
			}
			go func(st *Stream) {
				data, _ := io.ReadAll(st)
				st.Write(data)
				st.Close()
			}(st)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := client.OpenStream()
			if err != nil {
				t.Error(err)
				return
			}
			msg := fmt.Sprintf("stream-%d", i)
			io.WriteString(st, msg)
			st.Close()
			got, err := io.ReadAll(st)
			if err != nil || string(got) != msg {
				t.Errorf("stream %d: %q, %v", i, got, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestStreamReset(t *testing.T) {
	client, server := sessionPair(t)
	st, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(st, "x")
	acc, err := server.AcceptStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Reset(7)
	buf := make([]byte, 16)
	// The acceptor sees the first byte then the reset error.
	for {
		_, err := acc.Read(buf)
		if err != nil {
			if err == io.EOF {
				t.Fatal("got EOF, want reset error")
			}
			break
		}
	}
}

func TestSessionClose(t *testing.T) {
	client, server := sessionPair(t)
	st, _ := client.OpenStream()
	client.Close()
	if _, err := st.Write([]byte("x")); err == nil {
		t.Error("write on closed session should fail")
	}
	if _, err := client.OpenStream(); err == nil {
		t.Error("open on closed session should fail")
	}
	// The peer learns about the close.
	if _, err := server.AcceptStream(); err == nil {
		t.Error("accept on remotely-closed session should fail")
	}
}

func BenchmarkStreamThroughput(b *testing.B) {
	cEnd, sEnd := net.Pipe()
	client := NewSession(cEnd, true)
	server := NewSession(sEnd, false)
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			st, err := server.AcceptStream()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, st)
		}
	}()
	st, err := client.OpenStream()
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}
