package hpack

// Static and dynamic indexing tables, RFC 7541 §2.3.

// staticTable is the fixed 61-entry table of RFC 7541 Appendix A.
// Index 1 addresses the first entry.
var staticTable = [...]HeaderField{
	{Name: ":authority"},
	{Name: ":method", Value: "GET"},
	{Name: ":method", Value: "POST"},
	{Name: ":path", Value: "/"},
	{Name: ":path", Value: "/index.html"},
	{Name: ":scheme", Value: "http"},
	{Name: ":scheme", Value: "https"},
	{Name: ":status", Value: "200"},
	{Name: ":status", Value: "204"},
	{Name: ":status", Value: "206"},
	{Name: ":status", Value: "304"},
	{Name: ":status", Value: "400"},
	{Name: ":status", Value: "404"},
	{Name: ":status", Value: "500"},
	{Name: "accept-charset"},
	{Name: "accept-encoding", Value: "gzip, deflate"},
	{Name: "accept-language"},
	{Name: "accept-ranges"},
	{Name: "accept"},
	{Name: "access-control-allow-origin"},
	{Name: "age"},
	{Name: "allow"},
	{Name: "authorization"},
	{Name: "cache-control"},
	{Name: "content-disposition"},
	{Name: "content-encoding"},
	{Name: "content-language"},
	{Name: "content-length"},
	{Name: "content-location"},
	{Name: "content-range"},
	{Name: "content-type"},
	{Name: "cookie"},
	{Name: "date"},
	{Name: "etag"},
	{Name: "expect"},
	{Name: "expires"},
	{Name: "from"},
	{Name: "host"},
	{Name: "if-match"},
	{Name: "if-modified-since"},
	{Name: "if-none-match"},
	{Name: "if-range"},
	{Name: "if-unmodified-since"},
	{Name: "last-modified"},
	{Name: "link"},
	{Name: "location"},
	{Name: "max-forwards"},
	{Name: "proxy-authenticate"},
	{Name: "proxy-authorization"},
	{Name: "range"},
	{Name: "referer"},
	{Name: "refresh"},
	{Name: "retry-after"},
	{Name: "server"},
	{Name: "set-cookie"},
	{Name: "strict-transport-security"},
	{Name: "transfer-encoding"},
	{Name: "user-agent"},
	{Name: "vary"},
	{Name: "via"},
	{Name: "www-authenticate"},
}

// staticTableLen is the number of entries in the static table.
const staticTableLen = len(staticTable)

// staticLookup maps exact name/value pairs and bare names to static
// table indices for encoder use. Built by init.
var (
	staticPairIndex = map[HeaderField]uint64{}
	staticNameIndex = map[string]uint64{}
)

func init() {
	for i := len(staticTable) - 1; i >= 0; i-- {
		f := staticTable[i]
		idx := uint64(i + 1)
		staticPairIndex[HeaderField{Name: f.Name, Value: f.Value}] = idx
		staticNameIndex[f.Name] = idx // earliest index wins (loop is reversed)
	}
}

// dynamicTable is the FIFO of recently indexed fields (RFC 7541 §2.3.2).
// New entries are inserted at index staticTableLen+1 and evicted from
// the other end when size exceeds maxSize.
type dynamicTable struct {
	entries []HeaderField // entries[0] is the newest
	size    uint32
	maxSize uint32
}

func (t *dynamicTable) setMaxSize(n uint32) {
	t.maxSize = n
	t.evict()
}

// add inserts f, evicting as needed. An entry larger than the table
// clears the table entirely (RFC 7541 §4.4).
func (t *dynamicTable) add(f HeaderField) {
	sz := f.Size()
	if sz > t.maxSize {
		t.entries = nil
		t.size = 0
		return
	}
	t.entries = append(t.entries, HeaderField{})
	copy(t.entries[1:], t.entries)
	t.entries[0] = f
	t.size += sz
	t.evict()
}

func (t *dynamicTable) evict() {
	for t.size > t.maxSize && len(t.entries) > 0 {
		last := t.entries[len(t.entries)-1]
		t.size -= last.Size()
		t.entries = t.entries[:len(t.entries)-1]
	}
	if len(t.entries) == 0 {
		t.entries = nil
	}
}

// at returns the dynamic entry with 1-based dynamic index i
// (1 is the newest entry).
func (t *dynamicTable) at(i uint64) (HeaderField, bool) {
	if i == 0 || i > uint64(len(t.entries)) {
		return HeaderField{}, false
	}
	return t.entries[i-1], true
}

// lookup returns the combined-address-space index of the best match
// for f: exact match if possible, otherwise a name-only match.
// nameOnly reports that only the name matched.
func (t *dynamicTable) lookup(f HeaderField) (idx uint64, nameOnly bool, ok bool) {
	var nameIdx uint64
	for i, e := range t.entries {
		if e.Name != f.Name {
			continue
		}
		if e.Value == f.Value {
			return uint64(staticTableLen) + uint64(i) + 1, false, true
		}
		if nameIdx == 0 {
			nameIdx = uint64(staticTableLen) + uint64(i) + 1
		}
	}
	if nameIdx != 0 {
		return nameIdx, true, true
	}
	return 0, false, false
}

// tableEntry resolves a combined-address-space index against the
// static table followed by dyn.
func tableEntry(dyn *dynamicTable, idx uint64) (HeaderField, error) {
	if idx == 0 {
		return HeaderField{}, ErrInvalidIndex
	}
	if idx <= uint64(staticTableLen) {
		return staticTable[idx-1], nil
	}
	f, ok := dyn.at(idx - uint64(staticTableLen))
	if !ok {
		return HeaderField{}, ErrInvalidIndex
	}
	return f, nil
}
