package hpack

// Huffman coding for string literals, RFC 7541 §5.2 and Appendix B.
//
// The code table is canonical: within each code length, codes are
// assigned to symbols in ascending symbol order, and each length's
// first code continues where the previous length left off. Appendix B
// is exactly this canonical code, so the table here is generated from
// the per-symbol code lengths alone; the init-time
// completeness check and the RFC Appendix C vectors in hpack_test.go
// verify the construction.

// huffLengths holds the RFC 7541 Appendix B code length for each of
// the 256 octet symbols. The EOS symbol (256) has length 30 and is
// handled separately: it is never encoded, and its prefix is the only
// legal padding.
var huffLengths = [256]uint8{
	/* 0x00 */ 13, 23, 28, 28, 28, 28, 28, 28, 28, 24, 30, 28, 28, 30, 28, 28,
	/* 0x10 */ 28, 28, 28, 28, 28, 28, 30, 28, 28, 28, 28, 28, 28, 28, 28, 28,
	/* 0x20 */ 6, 10, 10, 12, 13, 6, 8, 11, 10, 10, 8, 11, 8, 6, 6, 6,
	/* 0x30 */ 5, 5, 5, 6, 6, 6, 6, 6, 6, 6, 7, 8, 15, 6, 12, 10,
	/* 0x40 */ 13, 6, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,
	/* 0x50 */ 7, 7, 7, 7, 7, 7, 7, 7, 8, 7, 8, 13, 19, 13, 14, 6,
	/* 0x60 */ 15, 5, 6, 5, 6, 5, 6, 6, 6, 5, 7, 7, 6, 6, 6, 5,
	/* 0x70 */ 6, 7, 6, 5, 5, 6, 7, 7, 7, 7, 7, 15, 11, 14, 13, 28,
	/* 0x80 */ 20, 22, 20, 20, 22, 22, 22, 23, 22, 23, 23, 23, 23, 23, 24, 23,
	/* 0x90 */ 24, 24, 22, 23, 24, 23, 23, 23, 23, 21, 22, 23, 22, 23, 23, 24,
	/* 0xa0 */ 22, 21, 20, 22, 22, 23, 23, 21, 23, 22, 22, 24, 21, 22, 23, 23,
	/* 0xb0 */ 21, 21, 22, 21, 23, 22, 23, 23, 20, 22, 22, 22, 23, 22, 22, 23,
	/* 0xc0 */ 26, 26, 20, 19, 22, 23, 22, 25, 26, 26, 26, 27, 27, 26, 24, 25,
	/* 0xd0 */ 19, 21, 26, 27, 27, 26, 27, 24, 21, 21, 26, 26, 28, 27, 27, 27,
	/* 0xe0 */ 20, 24, 20, 21, 22, 21, 21, 23, 22, 22, 25, 25, 24, 24, 26, 23,
	/* 0xf0 */ 26, 27, 26, 26, 27, 27, 27, 27, 27, 28, 27, 27, 27, 27, 27, 26,
}

const (
	eosLength = 30
	eosCode   = 0x3fffffff
)

// huffCodes holds the canonical code for each symbol, right-aligned in
// the low huffLengths[i] bits. Built by init.
var huffCodes [256]uint32

// huffDecodeTree is the root of the decoding tree. Built by init.
var huffDecodeTree *huffNode

type huffNode struct {
	children [2]*huffNode
	sym      uint16 // valid if leaf
	leaf     bool
}

func init() {
	// Canonical code assignment: walk lengths in increasing order and,
	// within a length, symbols in increasing order.
	code := uint32(0)
	prevLen := uint8(0)
	for _, l := range lengthsSorted() {
		code <<= (l.length - prevLen)
		prevLen = l.length
		huffCodes[l.sym] = code
		code++
	}
	// After all 256 symbols the remaining leaf at length 30 must be the
	// EOS code; the init-time check guards against table typos.
	code <<= (eosLength - prevLen)
	if code != eosCode {
		panic("hpack: huffman length table is not canonical")
	}

	huffDecodeTree = &huffNode{}
	for sym := 0; sym < 256; sym++ {
		insertCode(huffDecodeTree, huffCodes[sym], huffLengths[sym], uint16(sym))
	}
	insertCode(huffDecodeTree, eosCode, eosLength, 256)
}

type symLen struct {
	sym    uint16
	length uint8
}

func lengthsSorted() []symLen {
	out := make([]symLen, 0, 256)
	for l := uint8(5); l <= 28; l++ {
		for sym := 0; sym < 256; sym++ {
			if huffLengths[sym] == l {
				out = append(out, symLen{uint16(sym), l})
			}
		}
	}
	// The three length-30 symbols (0x0a, 0x0d, 0x16) come last.
	for sym := 0; sym < 256; sym++ {
		if huffLengths[sym] == eosLength {
			out = append(out, symLen{uint16(sym), eosLength})
		}
	}
	return out
}

func insertCode(root *huffNode, code uint32, length uint8, sym uint16) {
	n := root
	for i := int(length) - 1; i >= 0; i-- {
		bit := (code >> uint(i)) & 1
		if n.leaf {
			panic("hpack: huffman code is not prefix-free")
		}
		if n.children[bit] == nil {
			n.children[bit] = &huffNode{}
		}
		n = n.children[bit]
	}
	if n.leaf || n.children[0] != nil || n.children[1] != nil {
		panic("hpack: huffman code collision")
	}
	n.leaf = true
	n.sym = sym
}

// HuffmanEncodedLen returns the number of octets the Huffman encoding
// of s occupies, including padding.
func HuffmanEncodedLen(s string) int {
	bits := 0
	for i := 0; i < len(s); i++ {
		bits += int(huffLengths[s[i]])
	}
	return (bits + 7) / 8
}

// AppendHuffman appends the Huffman encoding of s to dst, padding the
// final octet with the EOS prefix (all ones) per RFC 7541 §5.2.
func AppendHuffman(dst []byte, s string) []byte {
	var acc uint64 // bit accumulator, high bits filled first
	var nbits uint
	for i := 0; i < len(s); i++ {
		c := s[i]
		acc = acc<<huffLengths[c] | uint64(huffCodes[c])
		nbits += uint(huffLengths[c])
		for nbits >= 8 {
			nbits -= 8
			dst = append(dst, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		// Pad with the most significant bits of EOS (all ones).
		acc = acc<<(8-nbits) | (1<<(8-nbits) - 1)
		dst = append(dst, byte(acc))
	}
	return dst
}

// DecodeHuffman decodes a Huffman-coded string literal. It rejects
// padding longer than 7 bits, padding that does not match the EOS
// prefix, and any appearance of the EOS symbol itself.
func DecodeHuffman(dst, src []byte) ([]byte, error) {
	return decodeHuffmanBounded(dst, src, -1)
}

// decodeHuffmanBounded is DecodeHuffman with an output ceiling: once
// the decoded length would exceed maxLen (when ≥ 0) it stops with
// ErrStringTooLong instead of expanding the rest of a bomb literal.
func decodeHuffmanBounded(dst, src []byte, maxLen int) ([]byte, error) {
	n := huffDecodeTree
	depth := 0 // bits consumed since the last emitted symbol
	allOnes := true
	for _, b := range src {
		for bit := 7; bit >= 0; bit-- {
			v := (b >> uint(bit)) & 1
			if v == 0 {
				allOnes = false
			}
			n = n.children[v]
			if n == nil {
				return nil, ErrInvalidHuffman
			}
			depth++
			if n.leaf {
				if n.sym == 256 {
					// EOS must never appear in the body (§5.2).
					return nil, ErrInvalidHuffman
				}
				if maxLen >= 0 && len(dst) >= maxLen {
					return nil, ErrStringTooLong
				}
				dst = append(dst, byte(n.sym))
				n = huffDecodeTree
				depth = 0
				allOnes = true
			}
		}
	}
	if depth > 7 || !allOnes {
		return nil, ErrInvalidHuffman
	}
	return dst, nil
}
