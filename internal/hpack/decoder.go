package hpack

// maxTableUpdatesPerBlock caps dynamic table size updates in one
// header block. A compliant encoder needs at most two (an intermediate
// reduction followed by the final size, RFC 7541 §4.2); more is either
// corruption or a CPU-burn attack cycling the table through evictions.
const maxTableUpdatesPerBlock = 2

// A Decoder parses header block fragments into header fields.
// It is not safe for concurrent use.
type Decoder struct {
	table dynamicTable

	// maxAllowed is the ceiling for dynamic table size updates: the
	// value this endpoint advertised in SETTINGS_HEADER_TABLE_SIZE.
	maxAllowed uint32

	// maxString bounds individual decoded string literals.
	maxString int

	// maxList bounds the total decoded header list per block, measured
	// in RFC 7541 §4.1 entry sizes (name + value + 32 per field). This
	// is the decompression-bomb ceiling: a block of one-byte indexed
	// references to a table-sized entry otherwise amplifies input bytes
	// into output by three orders of magnitude.
	maxList int
}

// NewDecoder returns a decoder whose dynamic table is capped at
// DefaultTableSize and whose string literals are capped at maxString
// bytes (0 means a permissive 1 MiB default). The total decoded
// header list per block is capped at 1 MiB; see SetMaxHeaderListBytes.
func NewDecoder(maxString int) *Decoder {
	if maxString <= 0 {
		maxString = 1 << 20
	}
	d := &Decoder{maxString: maxString, maxList: 1 << 20}
	d.table.maxSize = DefaultTableSize
	d.maxAllowed = DefaultTableSize
	return d
}

// SetMaxHeaderListBytes bounds the total decoded header list of one
// block (sum of RFC 7541 §4.1 entry sizes). Values ≤ 0 restore the
// 1 MiB default.
func (d *Decoder) SetMaxHeaderListBytes(n int) {
	if n <= 0 {
		n = 1 << 20
	}
	d.maxList = n
}

// SetMaxDynamicTableSize raises or lowers the ceiling the peer's
// table-size updates may use. Call when this endpoint changes its
// SETTINGS_HEADER_TABLE_SIZE.
func (d *Decoder) SetMaxDynamicTableSize(n uint32) {
	d.maxAllowed = n
	if d.table.maxSize > n {
		d.table.setMaxSize(n)
	}
}

// Decode parses a complete header block and returns the header list.
// Dynamic table size updates are honored only at the start of the
// block, per RFC 7541 §4.2.
func (d *Decoder) Decode(block []byte) ([]HeaderField, error) {
	var fields []HeaderField
	sawField := false
	listBytes := 0
	tableUpdates := 0
	account := func(f HeaderField) error {
		listBytes += int(f.Size())
		if listBytes > d.maxList {
			return ErrHeaderListTooLarge
		}
		return nil
	}
	for len(block) > 0 {
		b := block[0]
		switch {
		case b&0x80 != 0: // indexed field, §6.1
			idx, rest, err := readInteger(block, 7)
			if err != nil {
				return nil, err
			}
			f, err := tableEntry(&d.table, idx)
			if err != nil {
				return nil, err
			}
			if err := account(f); err != nil {
				return nil, err
			}
			fields = append(fields, f)
			block = rest
			sawField = true

		case b&0xc0 == 0x40: // literal with incremental indexing, §6.2.1
			f, rest, err := d.readLiteral(block, 6)
			if err != nil {
				return nil, err
			}
			if err := account(f); err != nil {
				return nil, err
			}
			d.table.add(f)
			fields = append(fields, f)
			block = rest
			sawField = true

		case b&0xe0 == 0x20: // dynamic table size update, §6.3
			if sawField {
				return nil, ErrTableSizeUpdate
			}
			tableUpdates++
			if tableUpdates > maxTableUpdatesPerBlock {
				return nil, ErrTableSizeUpdate
			}
			size, rest, err := readInteger(block, 5)
			if err != nil {
				return nil, err
			}
			if size > uint64(d.maxAllowed) {
				return nil, ErrTableSizeUpdate
			}
			d.table.setMaxSize(uint32(size))
			block = rest

		case b&0xf0 == 0x10: // never indexed, §6.2.3
			f, rest, err := d.readLiteral(block, 4)
			if err != nil {
				return nil, err
			}
			if err := account(f); err != nil {
				return nil, err
			}
			f.Sensitive = true
			fields = append(fields, f)
			block = rest
			sawField = true

		default: // literal without indexing, §6.2.2 (pattern 0000)
			f, rest, err := d.readLiteral(block, 4)
			if err != nil {
				return nil, err
			}
			if err := account(f); err != nil {
				return nil, err
			}
			fields = append(fields, f)
			block = rest
			sawField = true
		}
	}
	return fields, nil
}

func (d *Decoder) readLiteral(block []byte, prefix uint8) (HeaderField, []byte, error) {
	nameIdx, rest, err := readInteger(block, prefix)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var f HeaderField
	if nameIdx != 0 {
		ref, err := tableEntry(&d.table, nameIdx)
		if err != nil {
			return HeaderField{}, nil, err
		}
		f.Name = ref.Name
	} else {
		f.Name, rest, err = d.readString(rest)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	f.Value, rest, err = d.readString(rest)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return f, rest, nil
}

func (d *Decoder) readString(buf []byte) (string, []byte, error) {
	if len(buf) == 0 {
		return "", nil, ErrTruncated
	}
	huffman := buf[0]&0x80 != 0
	n, rest, err := readInteger(buf, 7)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(d.maxString) {
		return "", nil, ErrStringTooLong
	}
	if uint64(len(rest)) < n {
		return "", nil, ErrTruncated
	}
	raw := rest[:n]
	rest = rest[n:]
	if !huffman {
		return string(raw), rest, nil
	}
	// Bound the decode itself, not just the result: the limit stops
	// the expansion mid-stream instead of allocating the whole bomb
	// first and measuring it afterwards.
	decoded, err := decodeHuffmanBounded(make([]byte, 0, min(len(raw)*2, d.maxString)), raw, d.maxString)
	if err != nil {
		return "", nil, err
	}
	return string(decoded), rest, nil
}

// DynamicTableSize returns the current size in bytes of the decoder's
// dynamic table, for diagnostics.
func (d *Decoder) DynamicTableSize() uint32 { return d.table.size }
