package hpack

import (
	"bytes"
	"strings"
	"testing"
)

// TestDecompressionBomb builds the classic HPACK amplification block:
// one literal inserts a table-sized entry into the dynamic table, then
// a run of one-byte indexed references replays it. Without a header
// list ceiling, each input byte expands to ~2 KiB of output; the
// decoder must refuse the block instead of materializing it.
func TestDecompressionBomb(t *testing.T) {
	big := HeaderField{Name: "x-bomb", Value: strings.Repeat("a", 2000)}
	block := appendInteger(nil, 0x40, 6, 0) // literal with indexing, new name
	block = appendString(block, big.Name, false)
	block = appendString(block, big.Value, false)
	// 4096 indexed references to the entry just added (index 62).
	ref := appendInteger(nil, 0x80, 7, uint64(staticTableLen)+1)
	for i := 0; i < 4096; i++ {
		block = append(block, ref...)
	}
	// ~6 KiB of input would decode to > 8 MiB of header list.
	d := NewDecoder(0)
	if _, err := d.Decode(block); err != ErrHeaderListTooLarge {
		t.Fatalf("bomb decode err = %v, want ErrHeaderListTooLarge", err)
	}

	// A tighter ceiling trips proportionally earlier.
	d2 := NewDecoder(0)
	d2.SetMaxHeaderListBytes(8 << 10)
	if _, err := d2.Decode(block); err != ErrHeaderListTooLarge {
		t.Fatalf("bomb decode (8 KiB cap) err = %v, want ErrHeaderListTooLarge", err)
	}

	// The same fields under the ceiling decode fine: the cap bounds
	// totals, it does not reject ordinary blocks.
	small := appendInteger(nil, 0x40, 6, 0)
	small = appendString(small, "k", false)
	small = appendString(small, "v", false)
	small = append(small, appendInteger(nil, 0x80, 7, uint64(staticTableLen)+1)...)
	if fields, err := NewDecoder(0).Decode(small); err != nil || len(fields) != 2 {
		t.Fatalf("small block = %v fields, err %v", len(fields), err)
	}
}

// TestHuffmanBombStopsEarly checks that an over-limit Huffman literal
// fails during expansion, not after: the decoder must never allocate
// the full decoded form of a string it is going to reject.
func TestHuffmanBombStopsEarly(t *testing.T) {
	// '0' has a 5-bit code, so n input bytes expand to 1.6n output.
	raw := AppendHuffman(nil, strings.Repeat("0", 4000))
	lit := appendInteger(nil, 0x00, 4, 0) // literal, new name
	lit = appendString(lit, "n", false)
	lit = appendInteger(lit, 0x80, 7, uint64(len(raw))) // huffman-coded value
	lit = append(lit, raw...)

	d := NewDecoder(1024)
	if _, err := d.Decode(lit); err != ErrStringTooLong {
		t.Fatalf("huffman bomb err = %v, want ErrStringTooLong", err)
	}
	if out, err := decodeHuffmanBounded(nil, raw, 512); err != ErrStringTooLong || out != nil {
		t.Fatalf("bounded decode = %q, %v; want nil, ErrStringTooLong", out, err)
	}
}

// TestTableSizeUpdateChurn caps the number of dynamic-table-size
// updates per block: alternating shrink/grow updates churn the table
// through evictions for one input byte each, so more than the two a
// compliant encoder can need is rejected.
func TestTableSizeUpdateChurn(t *testing.T) {
	var block []byte
	for i := 0; i < 8; i++ {
		block = appendInteger(block, 0x20, 5, 0)
		block = appendInteger(block, 0x20, 5, 4096)
	}
	if _, err := NewDecoder(0).Decode(block); err != ErrTableSizeUpdate {
		t.Fatalf("update churn err = %v, want ErrTableSizeUpdate", err)
	}
	// Exactly two updates (the compliant shrink-then-grow) still pass.
	ok := appendInteger(nil, 0x20, 5, 0)
	ok = appendInteger(ok, 0x20, 5, 1024)
	ok = append(ok, appendInteger(nil, 0x80, 7, 2)...) // :method GET
	fields, err := NewDecoder(0).Decode(ok)
	if err != nil || len(fields) != 1 {
		t.Fatalf("two updates + field: %v fields, err %v", len(fields), err)
	}
	if !bytes.Equal([]byte(fields[0].Name), []byte(":method")) {
		t.Fatalf("field = %v", fields[0])
	}
}
