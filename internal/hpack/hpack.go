// Package hpack implements HPACK header compression as specified by
// RFC 7541, for use by the HTTP/2 stack in internal/http2.
//
// The package provides an Encoder that serializes header lists into
// header block fragments and a Decoder that parses header block
// fragments back into header fields, both maintaining the dynamic
// table state required by the RFC.
package hpack

import (
	"errors"
	"fmt"
)

// A HeaderField is a name/value pair carried in a header block.
// Sensitive fields are encoded as never-indexed literals so that
// intermediaries do not add them to their dynamic tables.
type HeaderField struct {
	Name, Value string

	// Sensitive marks the field as never-indexed (RFC 7541 §6.2.3).
	Sensitive bool
}

// Size returns the size of the entry as defined by RFC 7541 §4.1:
// the sum of the octet lengths of name and value plus 32.
func (f HeaderField) Size() uint32 {
	return uint32(len(f.Name)+len(f.Value)) + entryOverhead
}

// IsPseudo reports whether the field is an HTTP/2 pseudo-header
// (a name beginning with ':').
func (f HeaderField) IsPseudo() bool {
	return len(f.Name) > 0 && f.Name[0] == ':'
}

func (f HeaderField) String() string {
	suffix := ""
	if f.Sensitive {
		suffix = " (sensitive)"
	}
	return fmt.Sprintf("%s: %s%s", f.Name, f.Value, suffix)
}

// entryOverhead is the per-entry accounting overhead of RFC 7541 §4.1.
const entryOverhead = 32

// DefaultTableSize is the initial dynamic table size mandated by
// SETTINGS_HEADER_TABLE_SIZE's default (RFC 9113 §6.5.2).
const DefaultTableSize = 4096

// Decoding errors.
var (
	// ErrInvalidIndex indicates a header field index outside the
	// combined static+dynamic table address space.
	ErrInvalidIndex = errors.New("hpack: invalid header field index")

	// ErrIntegerOverflow indicates a prefixed integer that exceeds the
	// implementation limit.
	ErrIntegerOverflow = errors.New("hpack: integer overflow")

	// ErrTruncated indicates a header block that ends mid-field.
	ErrTruncated = errors.New("hpack: truncated header block")

	// ErrInvalidHuffman indicates a malformed Huffman-coded string,
	// including padding longer than 7 bits or padding not matching the
	// EOS prefix (RFC 7541 §5.2).
	ErrInvalidHuffman = errors.New("hpack: invalid huffman-coded data")

	// ErrTableSizeUpdate indicates a dynamic table size update that is
	// larger than the limit set by the decoder's owner, or one that
	// appears after the first header field of a block.
	ErrTableSizeUpdate = errors.New("hpack: invalid dynamic table size update")

	// ErrStringTooLong indicates a string literal longer than the
	// decoder's configured limit.
	ErrStringTooLong = errors.New("hpack: string literal exceeds limit")

	// ErrHeaderListTooLarge indicates a header block whose decoded
	// field list exceeds the decoder's total ceiling — the signature of
	// a decompression bomb built from indexed references to large
	// table entries.
	ErrHeaderListTooLarge = errors.New("hpack: decoded header list exceeds limit")
)
