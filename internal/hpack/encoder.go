package hpack

// An Encoder serializes header fields into header block fragments.
// It is not safe for concurrent use; HTTP/2 serializes header block
// emission per connection, which matches this constraint.
type Encoder struct {
	table dynamicTable

	// pendingMax holds table-size updates that must be emitted at the
	// start of the next header block (RFC 7541 §4.2).
	pendingMax  []uint32
	minPending  uint32
	havePending bool
}

// NewEncoder returns an encoder with the default 4096-byte dynamic
// table.
func NewEncoder() *Encoder {
	e := &Encoder{}
	e.table.maxSize = DefaultTableSize
	return e
}

// SetMaxDynamicTableSize changes the encoder's dynamic table capacity.
// The change is advertised with a dynamic table size update at the
// start of the next header block. Callers must not raise the size
// beyond what the peer's SETTINGS_HEADER_TABLE_SIZE permits.
func (e *Encoder) SetMaxDynamicTableSize(n uint32) {
	if !e.havePending || n < e.minPending {
		e.minPending = n
		e.havePending = true
	}
	e.pendingMax = append(e.pendingMax, n)
	e.table.setMaxSize(n)
}

// AppendField appends the encoding of f to dst and returns the
// extended slice. Sensitive fields are encoded never-indexed; other
// fields use incremental indexing when they are small enough to be
// worth caching.
func (e *Encoder) AppendField(dst []byte, f HeaderField) []byte {
	dst = e.flushTableUpdates(dst)

	if f.Sensitive {
		idx, _ := e.nameIndex(f.Name)
		return appendLiteral(dst, 0x10, 4, idx, f, false)
	} else if idx, exact := e.bestIndex(f); exact {
		// Indexed header field, §6.1.
		return appendInteger(dst, 0x80, 7, idx)
	} else if e.shouldIndex(f) {
		// Literal with incremental indexing, §6.2.1.
		e.table.add(f)
		return appendLiteral(dst, 0x40, 6, idx, f, true)
	} else {
		// Literal without indexing, §6.2.2.
		return appendLiteral(dst, 0x00, 4, idx, f, true)
	}
}

// AppendFields encodes a full header list.
func (e *Encoder) AppendFields(dst []byte, fields []HeaderField) []byte {
	for _, f := range fields {
		dst = e.AppendField(dst, f)
	}
	return dst
}

func (e *Encoder) flushTableUpdates(dst []byte) []byte {
	if !e.havePending {
		return dst
	}
	// Emit the smallest intermediate size first if the table shrank
	// below its final value at any point (§4.2).
	final := e.pendingMax[len(e.pendingMax)-1]
	if e.minPending < final {
		dst = appendInteger(dst, 0x20, 5, uint64(e.minPending))
	}
	dst = appendInteger(dst, 0x20, 5, uint64(final))
	e.pendingMax = e.pendingMax[:0]
	e.havePending = false
	return dst
}

// shouldIndex reports whether f is worth adding to the dynamic table.
// Very large values (for example full page payload digests) would
// evict everything useful.
func (e *Encoder) shouldIndex(f HeaderField) bool {
	return f.Size() <= e.table.maxSize/2 || f.Size() <= 256
}

// bestIndex returns the best available table index for f. exact
// reports a full name+value match; otherwise idx (possibly 0) is a
// name-only match.
func (e *Encoder) bestIndex(f HeaderField) (idx uint64, exact bool) {
	probe := HeaderField{Name: f.Name, Value: f.Value}
	if i, ok := staticPairIndex[probe]; ok {
		return i, true
	}
	if i, nameOnly, ok := e.table.lookup(f); ok && !nameOnly {
		return i, true
	}
	idx, _ = e.nameIndex(f.Name)
	return idx, false
}

func (e *Encoder) nameIndex(name string) (uint64, bool) {
	if i, ok := staticNameIndex[name]; ok {
		return i, true
	}
	if i, nameOnly, ok := e.table.lookup(HeaderField{Name: name}); ok && nameOnly {
		return i, true
	}
	return 0, false
}

// appendLiteral encodes a literal header field with the given type
// pattern and prefix. If nameIdx is zero the name is emitted as a
// string literal. huffman selects Huffman coding for strings when it
// is smaller than the raw form.
func appendLiteral(dst []byte, pattern byte, prefix uint8, nameIdx uint64, f HeaderField, huffman bool) []byte {
	dst = appendInteger(dst, pattern, prefix, nameIdx)
	if nameIdx == 0 {
		dst = appendString(dst, f.Name, huffman)
	}
	return appendString(dst, f.Value, huffman)
}

// appendString encodes a string literal (§5.2), choosing Huffman
// coding when allowed and strictly smaller.
func appendString(dst []byte, s string, allowHuffman bool) []byte {
	if allowHuffman {
		if hl := HuffmanEncodedLen(s); hl < len(s) {
			dst = appendInteger(dst, 0x80, 7, uint64(hl))
			return AppendHuffman(dst, s)
		}
	}
	dst = appendInteger(dst, 0x00, 7, uint64(len(s)))
	return append(dst, s...)
}

// DynamicTableSize returns the current size in bytes of the encoder's
// dynamic table, for diagnostics.
func (e *Encoder) DynamicTableSize() uint32 { return e.table.size }
