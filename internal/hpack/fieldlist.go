package hpack

import "sync"

// A FieldList is a reusable header-field slice for assembling one
// request's or response's field set without a per-message allocation
// (the dgrr/http2 AcquireHeaderField idiom, lifted to whole lists
// since this codebase encodes field sets in one shot).
//
// Ownership: the acquirer owns the list until ReleaseFieldList.
// Encoding a list does not retain the slice — Encoder.AppendFields
// reads it synchronously — so the usual shape is acquire, append,
// encode, release. A released list must not be touched again.
type FieldList struct {
	Fields []HeaderField
}

var fieldListPool = sync.Pool{
	New: func() any {
		return &FieldList{Fields: make([]HeaderField, 0, 16)}
	},
}

// AcquireFieldList returns an empty field list from the pool.
func AcquireFieldList() *FieldList {
	return fieldListPool.Get().(*FieldList)
}

// ReleaseFieldList clears l (dropping its string references so the
// pool does not pin header values) and returns it to the pool.
func ReleaseFieldList(l *FieldList) {
	for i := range l.Fields {
		l.Fields[i] = HeaderField{}
	}
	l.Fields = l.Fields[:0]
	fieldListPool.Put(l)
}

// Add appends a field.
func (l *FieldList) Add(name, value string) {
	l.Fields = append(l.Fields, HeaderField{Name: name, Value: value})
}
