package hpack

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntegerRoundTrip(t *testing.T) {
	cases := []struct {
		prefix uint8
		v      uint64
	}{
		{5, 10}, {5, 31}, {5, 32}, {5, 1337}, {7, 0}, {7, 127}, {7, 128},
		{8, 255}, {8, 256}, {1, 0}, {1, 1}, {1, 500}, {6, 1 << 31},
	}
	for _, c := range cases {
		buf := appendInteger(nil, 0, c.prefix, c.v)
		got, rest, err := readInteger(buf, c.prefix)
		if err != nil {
			t.Fatalf("prefix=%d v=%d: %v", c.prefix, c.v, err)
		}
		if got != c.v || len(rest) != 0 {
			t.Errorf("prefix=%d: got %d (rest %d), want %d", c.prefix, got, len(rest), c.v)
		}
	}
}

// TestIntegerRFCExamples checks the worked examples of RFC 7541 §C.1.
func TestIntegerRFCExamples(t *testing.T) {
	// C.1.1: 10 with 5-bit prefix => 0b01010.
	if got := appendInteger(nil, 0, 5, 10); !bytes.Equal(got, []byte{0x0a}) {
		t.Errorf("encode 10/5 = %x, want 0a", got)
	}
	// C.1.2: 1337 with 5-bit prefix => 1f 9a 0a.
	if got := appendInteger(nil, 0, 5, 1337); !bytes.Equal(got, []byte{0x1f, 0x9a, 0x0a}) {
		t.Errorf("encode 1337/5 = %x, want 1f9a0a", got)
	}
	// C.1.3: 42 with 8-bit prefix => 2a.
	if got := appendInteger(nil, 0, 8, 42); !bytes.Equal(got, []byte{0x2a}) {
		t.Errorf("encode 42/8 = %x, want 2a", got)
	}
}

func TestIntegerProperty(t *testing.T) {
	f := func(v uint32, p uint8) bool {
		prefix := p%8 + 1
		buf := appendInteger(nil, 0, prefix, uint64(v))
		got, rest, err := readInteger(buf, prefix)
		return err == nil && got == uint64(v) && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntegerErrors(t *testing.T) {
	if _, _, err := readInteger(nil, 5); err != ErrTruncated {
		t.Errorf("empty buf: %v, want ErrTruncated", err)
	}
	// Continuation never terminates.
	if _, _, err := readInteger([]byte{0x1f, 0x80, 0x80}, 5); err != ErrTruncated {
		t.Errorf("unterminated: %v, want ErrTruncated", err)
	}
	// Overflow.
	over := []byte{0x1f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := readInteger(over, 5); err != ErrIntegerOverflow {
		t.Errorf("overflow: %v, want ErrIntegerOverflow", err)
	}
}

// TestHuffmanRFCVectors checks the Huffman table against the encoded
// strings that appear in RFC 7541 Appendix C.
func TestHuffmanRFCVectors(t *testing.T) {
	vectors := []struct {
		s   string
		hex string
	}{
		{"www.example.com", "f1e3c2e5f23a6ba0ab90f4ff"},
		{"no-cache", "a8eb10649cbf"},
		{"custom-key", "25a849e95ba97d7f"},
		{"custom-value", "25a849e95bb8e8b4bf"},
		{"302", "6402"},
		{"private", "aec3771a4b"},
		{"Mon, 21 Oct 2013 20:13:21 GMT", "d07abe941054d444a8200595040b8166e082a62d1bff"},
		{"https://www.example.com", "9d29ad171863c78f0b97c8e9ae82ae43d3"},
		{"307", "640eff"},
		{"gzip", "9bd9ab"},
	}
	for _, v := range vectors {
		want, err := hex.DecodeString(v.hex)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendHuffman(nil, v.s)
		if !bytes.Equal(got, want) {
			t.Errorf("encode(%q) = %x, want %x", v.s, got, want)
		}
		dec, err := DecodeHuffman(nil, want)
		if err != nil {
			t.Fatalf("decode(%q): %v", v.s, err)
		}
		if string(dec) != v.s {
			t.Errorf("decode(%x) = %q, want %q", want, dec, v.s)
		}
	}
}

func TestHuffmanRoundTripAllBytes(t *testing.T) {
	var all []byte
	for i := 0; i < 256; i++ {
		all = append(all, byte(i))
	}
	enc := AppendHuffman(nil, string(all))
	dec, err := DecodeHuffman(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, all) {
		t.Error("round trip over all byte values failed")
	}
}

func TestHuffmanProperty(t *testing.T) {
	f := func(b []byte) bool {
		enc := AppendHuffman(nil, string(b))
		dec, err := DecodeHuffman(nil, enc)
		return err == nil && bytes.Equal(dec, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanInvalidPadding(t *testing.T) {
	// 'a' is 00011 (5 bits); pad the rest of the byte with zeros
	// instead of ones: 00011000 = 0x18 decodes as "0/" prefix...
	// actually 0x18 is two valid symbols. Use a byte that leaves a
	// non-EOS partial: 0x00 is five 0 bits = '0' then 000 padding,
	// which is not all-ones and must be rejected.
	if _, err := DecodeHuffman(nil, []byte{0x00}); err != ErrInvalidHuffman {
		t.Errorf("zero padding: %v, want ErrInvalidHuffman", err)
	}
	// A full byte of padding (EOS prefix longer than 7 bits).
	enc := AppendHuffman(nil, "a")
	if _, err := DecodeHuffman(nil, append(enc, 0xff)); err != ErrInvalidHuffman {
		t.Errorf("8+ bit padding: %v, want ErrInvalidHuffman", err)
	}
}

func TestHuffmanEncodedLen(t *testing.T) {
	for _, s := range []string{"", "a", "www.example.com", "héllo\x00\xff"} {
		if got, want := HuffmanEncodedLen(s), len(AppendHuffman(nil, s)); got != want {
			t.Errorf("HuffmanEncodedLen(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestStaticTable(t *testing.T) {
	if staticTableLen != 61 {
		t.Fatalf("static table has %d entries, want 61", staticTableLen)
	}
	checks := map[uint64]HeaderField{
		1:  {Name: ":authority"},
		2:  {Name: ":method", Value: "GET"},
		8:  {Name: ":status", Value: "200"},
		31: {Name: "content-type"},
		61: {Name: "www-authenticate"},
	}
	var dyn dynamicTable
	for idx, want := range checks {
		got, err := tableEntry(&dyn, idx)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("entry %d = %+v, want %+v", idx, got, want)
		}
	}
	if _, err := tableEntry(&dyn, 62); err != ErrInvalidIndex {
		t.Errorf("index 62 with empty dynamic table: %v, want ErrInvalidIndex", err)
	}
	if _, err := tableEntry(&dyn, 0); err != ErrInvalidIndex {
		t.Errorf("index 0: %v, want ErrInvalidIndex", err)
	}
}

func TestDynamicTableEviction(t *testing.T) {
	dt := dynamicTable{maxSize: 100}
	a := HeaderField{Name: "aaaa", Value: "bbbb"} // size 40
	b := HeaderField{Name: "cccc", Value: "dddd"} // size 40
	c := HeaderField{Name: "eeee", Value: "ffff"} // size 40
	dt.add(a)
	dt.add(b)
	if dt.size != 80 || len(dt.entries) != 2 {
		t.Fatalf("size=%d n=%d, want 80/2", dt.size, len(dt.entries))
	}
	dt.add(c) // must evict a
	if dt.size != 80 || len(dt.entries) != 2 {
		t.Fatalf("after eviction size=%d n=%d, want 80/2", dt.size, len(dt.entries))
	}
	if got, _ := dt.at(1); got != c {
		t.Errorf("newest = %+v, want %+v", got, c)
	}
	if got, _ := dt.at(2); got != b {
		t.Errorf("second = %+v, want %+v", got, b)
	}
	// An entry bigger than the whole table clears it (§4.4).
	dt.add(HeaderField{Name: strings.Repeat("x", 200)})
	if dt.size != 0 || len(dt.entries) != 0 {
		t.Errorf("oversized add: size=%d n=%d, want empty", dt.size, len(dt.entries))
	}
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.ReplaceAll(s, " ", ""))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDecodeRFCAppendixC3 replays the three-request plain-literal
// sequence of RFC 7541 §C.3, checking dynamic table evolution.
func TestDecodeRFCAppendixC3(t *testing.T) {
	d := NewDecoder(0)

	got, err := d.Decode(mustHex(t, "8286 8441 0f77 7777 2e65 7861 6d70 6c65 2e63 6f6d"))
	if err != nil {
		t.Fatal(err)
	}
	want := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "http"},
		{Name: ":path", Value: "/"},
		{Name: ":authority", Value: "www.example.com"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("request 1 = %v, want %v", got, want)
	}
	if d.DynamicTableSize() != 57 {
		t.Fatalf("table size after req 1 = %d, want 57", d.DynamicTableSize())
	}

	got, err = d.Decode(mustHex(t, "8286 84be 5808 6e6f 2d63 6163 6865"))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want[:3:3], HeaderField{Name: ":authority", Value: "www.example.com"},
		HeaderField{Name: "cache-control", Value: "no-cache"})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("request 2 = %v, want %v", got, want)
	}
	if d.DynamicTableSize() != 110 {
		t.Fatalf("table size after req 2 = %d, want 110", d.DynamicTableSize())
	}

	got, err = d.Decode(mustHex(t,
		"8287 85bf 400a 6375 7374 6f6d 2d6b 6579 0c63 7573 746f 6d2d 7661 6c75 65"))
	if err != nil {
		t.Fatal(err)
	}
	want = []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":path", Value: "/index.html"},
		{Name: ":authority", Value: "www.example.com"},
		{Name: "custom-key", Value: "custom-value"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("request 3 = %v, want %v", got, want)
	}
	if d.DynamicTableSize() != 164 {
		t.Fatalf("table size after req 3 = %d, want 164", d.DynamicTableSize())
	}
}

// TestDecodeRFCAppendixC4 replays the Huffman-coded request sequence
// of RFC 7541 §C.4.
func TestDecodeRFCAppendixC4(t *testing.T) {
	d := NewDecoder(0)
	blocks := []string{
		"8286 8441 8cf1 e3c2 e5f2 3a6b a0ab 90f4 ff",
		"8286 84be 5886 a8eb 1064 9cbf",
		"8287 85bf 4088 25a8 49e9 5ba9 7d7f 8925 a849 e95b b8e8 b4bf",
	}
	var last []HeaderField
	for i, blk := range blocks {
		var err error
		last, err = d.Decode(mustHex(t, blk))
		if err != nil {
			t.Fatalf("block %d: %v", i+1, err)
		}
	}
	want := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":path", Value: "/index.html"},
		{Name: ":authority", Value: "www.example.com"},
		{Name: "custom-key", Value: "custom-value"},
	}
	if !reflect.DeepEqual(last, want) {
		t.Fatalf("request 3 = %v, want %v", last, want)
	}
	if d.DynamicTableSize() != 164 {
		t.Fatalf("table size = %d, want 164", d.DynamicTableSize())
	}
}

// TestDecodeRFCAppendixC6 replays the first Huffman-coded response of
// RFC 7541 §C.6 with a 256-byte dynamic table.
func TestDecodeRFCAppendixC6(t *testing.T) {
	d := NewDecoder(0)
	d.SetMaxDynamicTableSize(256)
	got, err := d.Decode(mustHex(t,
		"4882 6402 5885 aec3 771a 4b61 96d0 7abe 9410 54d4 44a8 2005 9504 0b81 66e0 82a6 2d1b ff6e 919d 29ad 1718 63c7 8f0b 97c8 e9ae 82ae 43d3"))
	if err != nil {
		t.Fatal(err)
	}
	want := []HeaderField{
		{Name: ":status", Value: "302"},
		{Name: "cache-control", Value: "private"},
		{Name: "date", Value: "Mon, 21 Oct 2013 20:13:21 GMT"},
		{Name: "location", Value: "https://www.example.com"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("response 1 = %v, want %v", got, want)
	}
	if d.DynamicTableSize() != 222 {
		t.Fatalf("table size = %d, want 222", d.DynamicTableSize())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder(0)
	headers := [][]HeaderField{
		{
			{Name: ":method", Value: "GET"},
			{Name: ":path", Value: "/wiki/landscape"},
			{Name: ":scheme", Value: "https"},
			{Name: ":authority", Value: "sww.example"},
			{Name: "accept", Value: "text/html"},
		},
		{
			{Name: ":method", Value: "GET"},
			{Name: ":path", Value: "/wiki/landscape"},
			{Name: ":scheme", Value: "https"},
			{Name: ":authority", Value: "sww.example"},
			{Name: "accept", Value: "text/html"},
			{Name: "authorization", Value: "Bearer secret-token", Sensitive: true},
		},
		{
			{Name: ":status", Value: "200"},
			{Name: "content-type", Value: "text/html; charset=utf-8"},
			{Name: "x-sww-generated", Value: "1"},
		},
	}
	for i, hs := range headers {
		block := e.AppendFields(nil, hs)
		got, err := d.Decode(block)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if len(got) != len(hs) {
			t.Fatalf("block %d: %d fields, want %d", i, len(got), len(hs))
		}
		for j := range hs {
			if got[j].Name != hs[j].Name || got[j].Value != hs[j].Value {
				t.Errorf("block %d field %d = %v, want %v", i, j, got[j], hs[j])
			}
			if hs[j].Sensitive && !got[j].Sensitive {
				t.Errorf("block %d field %d lost sensitive flag", i, j)
			}
		}
	}
	// Repeated headers should compress to (nearly) pure index bytes.
	block := e.AppendFields(nil, headers[0])
	if len(block) > len(headers[0])+2 {
		t.Errorf("repeated header block is %d bytes; indexing is not working", len(block))
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEncoder()
	d := NewDecoder(0)
	alpha := "abcdefghijklmnopqrstuvwxyz-0123456789 /=;"
	randStr := func(n int) string {
		b := make([]byte, rng.Intn(n)+1)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(10) + 1
		hs := make([]HeaderField, n)
		for i := range hs {
			hs[i] = HeaderField{
				Name:      randStr(16),
				Value:     randStr(40),
				Sensitive: rng.Intn(10) == 0,
			}
		}
		block := e.AppendFields(nil, hs)
		got, err := d.Decode(block)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := range hs {
			if got[i].Name != hs[i].Name || got[i].Value != hs[i].Value {
				t.Fatalf("iter %d field %d = %v, want %v", iter, i, got[i], hs[i])
			}
		}
	}
}

func TestTableSizeUpdate(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder(0)
	// Shrink then grow: both updates must be present at the start of
	// the next block and accepted by the decoder.
	e.SetMaxDynamicTableSize(0)
	e.SetMaxDynamicTableSize(1024)
	block := e.AppendFields(nil, []HeaderField{{Name: "x", Value: "y"}})
	if _, err := d.Decode(block); err != nil {
		t.Fatalf("decode after resize: %v", err)
	}
	// An update exceeding the decoder's allowance is a decode error.
	d2 := NewDecoder(0)
	d2.SetMaxDynamicTableSize(64)
	bad := appendInteger(nil, 0x20, 5, 65)
	if _, err := d2.Decode(bad); err != ErrTableSizeUpdate {
		t.Errorf("oversized update: %v, want ErrTableSizeUpdate", err)
	}
	// Updates after the first field are illegal.
	mid := appendInteger(nil, 0x80, 7, 2) // :method GET
	mid = appendInteger(mid, 0x20, 5, 0)
	if _, err := d.Decode(mid); err != ErrTableSizeUpdate {
		t.Errorf("mid-block update: %v, want ErrTableSizeUpdate", err)
	}
}

func TestDecoderErrors(t *testing.T) {
	d := NewDecoder(8)
	// String longer than decoder limit.
	long := appendInteger(nil, 0x00, 4, 0)
	long = appendString(long, "this-name-is-too-long", false)
	long = appendString(long, "v", false)
	if _, err := d.Decode(long); err != ErrStringTooLong {
		t.Errorf("long string: %v, want ErrStringTooLong", err)
	}
	// Truncated literal.
	d2 := NewDecoder(0)
	if _, err := d2.Decode([]byte{0x40, 0x05, 'a', 'b'}); err != ErrTruncated {
		t.Errorf("truncated: %v, want ErrTruncated", err)
	}
	// Index beyond tables.
	if _, err := d2.Decode(appendInteger(nil, 0x80, 7, 200)); err != ErrInvalidIndex {
		t.Errorf("bad index: %v, want ErrInvalidIndex", err)
	}
}

func TestSensitiveNeverIndexed(t *testing.T) {
	e := NewEncoder()
	f := HeaderField{Name: "authorization", Value: "Bearer tok", Sensitive: true}
	block := e.AppendField(nil, f)
	// First octet must have the 0001 pattern (never-indexed).
	if block[0]&0xf0 != 0x10 {
		t.Fatalf("first octet %02x, want 0001xxxx pattern", block[0])
	}
	if e.DynamicTableSize() != 0 {
		t.Error("sensitive field was added to the dynamic table")
	}
	// And the value must appear in cleartext (no Huffman) so auditing
	// middleboxes can redact it deterministically.
	if !bytes.Contains(block, []byte("Bearer tok")) {
		t.Error("sensitive value not in raw form")
	}
}

func TestHeaderFieldSize(t *testing.T) {
	f := HeaderField{Name: "custom-key", Value: "custom-header"}
	if f.Size() != 55 { // RFC 7541 §4.1 example
		t.Errorf("Size = %d, want 55", f.Size())
	}
}

func BenchmarkEncodeRequestHeaders(b *testing.B) {
	e := NewEncoder()
	hs := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/wiki/landscape"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "sww.example"},
		{Name: "accept", Value: "text/html,application/xhtml+xml"},
		{Name: "user-agent", Value: "sww-client/1.0"},
	}
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = e.AppendFields(buf[:0], hs)
	}
}

func BenchmarkDecodeRequestHeaders(b *testing.B) {
	e := NewEncoder()
	hs := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/wiki/landscape"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "sww.example"},
	}
	d := NewDecoder(0)
	// First block populates both dynamic tables; the second is the
	// fully indexed steady-state form, which decoding does not mutate.
	first := e.AppendFields(nil, hs)
	if _, err := d.Decode(first); err != nil {
		b.Fatal(err)
	}
	block := e.AppendFields(nil, hs)
	if _, err := d.Decode(block); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(block); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHuffmanEncode(b *testing.B) {
	s := "A detailed photograph of an alpine landscape with a turquoise lake"
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = AppendHuffman(buf[:0], s)
	}
}

func BenchmarkHuffmanDecode(b *testing.B) {
	s := "A detailed photograph of an alpine landscape with a turquoise lake"
	enc := AppendHuffman(nil, s)
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = DecodeHuffman(buf[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}
