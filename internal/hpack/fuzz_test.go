package hpack

// FuzzHPACKDecode feeds arbitrary header blocks to the decoder and
// enforces its two safety contracts: no panic, and decoded output
// bounded by the header-list ceiling regardless of the amplification
// the input encodes. Seed corpus in testdata/fuzz/FuzzHPACKDecode.

import (
	"strings"
	"testing"
)

func FuzzHPACKDecode(f *testing.F) {
	// An honest encoded block.
	enc := NewEncoder()
	f.Add(enc.AppendFields(nil, []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/load/page-001"},
		{Name: "accept", Value: "text/html"},
	}))
	// The decompression-bomb prefix: one big literal then indexed refs.
	bomb := appendInteger(nil, 0x40, 6, 0)
	bomb = appendString(bomb, "x-bomb", false)
	bomb = appendString(bomb, strings.Repeat("a", 2000), false)
	for i := 0; i < 64; i++ {
		bomb = append(bomb, appendInteger(nil, 0x80, 7, uint64(staticTableLen)+1)...)
	}
	f.Add(bomb)
	// A Huffman literal and a table-size-update churn block.
	lit := appendInteger(nil, 0x00, 4, 0)
	lit = appendString(lit, "n", false)
	raw := AppendHuffman(nil, strings.Repeat("0", 300))
	lit = appendInteger(lit, 0x80, 7, uint64(len(raw)))
	f.Add(append(lit, raw...))
	churn := appendInteger(nil, 0x20, 5, 0)
	churn = appendInteger(churn, 0x20, 5, 4096)
	churn = appendInteger(churn, 0x20, 5, 0)
	f.Add(churn)
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff"))

	const listCap = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(4096)
		d.SetMaxHeaderListBytes(listCap)
		fields, err := d.Decode(data)
		if err != nil {
			return
		}
		total := 0
		for _, hf := range fields {
			total += int(hf.Size())
		}
		if total > listCap {
			t.Fatalf("decoded %d header-list bytes from %d input bytes, cap %d",
				total, len(data), listCap)
		}
	})
}
