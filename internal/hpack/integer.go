package hpack

// Prefixed integer representation, RFC 7541 §5.1.
//
// An integer is encoded into the low n bits of the first octet; values
// that do not fit continue in subsequent octets, 7 bits at a time,
// least significant group first, with the high bit acting as a
// continuation flag.

// maxInteger bounds decoded integers. Anything above this is treated
// as an attack or corruption; real header metadata never approaches it.
const maxInteger = 1 << 32

// appendInteger appends the prefixed-integer encoding of v to dst.
// prefix must be in [1,8]. high carries the upper (8-prefix) bits of
// the first octet (the pattern bits of the field type).
func appendInteger(dst []byte, high byte, prefix uint8, v uint64) []byte {
	mask := uint64(1)<<prefix - 1
	if v < mask {
		return append(dst, high|byte(v))
	}
	dst = append(dst, high|byte(mask))
	v -= mask
	for v >= 0x80 {
		dst = append(dst, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readInteger decodes a prefixed integer from buf. prefix must be in
// [1,8]. It returns the value and the remainder of buf.
func readInteger(buf []byte, prefix uint8) (v uint64, rest []byte, err error) {
	if len(buf) == 0 {
		return 0, nil, ErrTruncated
	}
	mask := uint64(1)<<prefix - 1
	v = uint64(buf[0]) & mask
	buf = buf[1:]
	if v < mask {
		return v, buf, nil
	}
	var shift uint
	for {
		if len(buf) == 0 {
			return 0, nil, ErrTruncated
		}
		b := buf[0]
		buf = buf[1:]
		v += uint64(b&0x7f) << shift
		if v > maxInteger {
			return 0, nil, ErrIntegerOverflow
		}
		if b&0x80 == 0 {
			return v, buf, nil
		}
		shift += 7
		if shift > 63 {
			return 0, nil, ErrIntegerOverflow
		}
	}
}
