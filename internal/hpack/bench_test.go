package hpack

import "testing"

// BenchmarkHPACKEncode measures one response header block the way
// the h2 server emits it: assemble the per-response field list, then
// encode it. The field values repeat across iterations, so after the
// first op the dynamic table serves indexed entries — the steady
// state of a warm serve loop.
func BenchmarkHPACKEncode(b *testing.B) {
	enc := NewEncoder()
	var block []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fields := []HeaderField{
			{Name: ":status", Value: "200"},
			{Name: "content-type", Value: "text/html; charset=utf-8"},
			{Name: "content-length", Value: "20210"},
			{Name: "x-sww-mode", Value: "generative"},
		}
		block = enc.AppendFields(nil, fields)
	}
	_ = block
}
