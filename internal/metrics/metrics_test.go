package metrics

import (
	"image"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! It's 42°C...")
	want := []string{"hello", "world", "it", "s", "42", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("the hike is on a trail with views")
	want := []string{"hike", "trail", "views"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %q", i, got[i])
		}
	}
}

func TestEmbedTextProperties(t *testing.T) {
	e1 := EmbedText("alpine lake with snowy mountains")
	e2 := EmbedText("alpine lake with snowy mountains")
	e3 := EmbedText("alpine lake beneath snowy mountains at dawn")
	e4 := EmbedText("quarterly financial report earnings statement")

	if Cosine(e1, e2) < 0.999 {
		t.Error("embedding not deterministic")
	}
	if n := vecNorm(e1); math.Abs(n-1) > 1e-9 {
		t.Errorf("norm = %v, want 1", n)
	}
	simRelated := Cosine(e1, e3)
	simUnrelated := Cosine(e1, e4)
	if simRelated <= simUnrelated {
		t.Errorf("related %.3f <= unrelated %.3f", simRelated, simUnrelated)
	}
	if simRelated < 0.5 {
		t.Errorf("related texts score only %.3f", simRelated)
	}
	if math.Abs(simUnrelated) > 0.45 {
		t.Errorf("unrelated texts score %.3f", simUnrelated)
	}
	// Stopword-only text embeds to zero.
	if vecNorm(EmbedText("the a of and")) != 0 {
		t.Error("stopword-only text should embed to zero")
	}
}

func TestEmbedImage(t *testing.T) {
	// An image with a bright left half and dark right half must have
	// positive features on the left cells, negative on the right.
	img := image.NewRGBA(image.Rect(0, 0, 64, 64))
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := uint8(40)
			if x < 32 {
				v = 220
			}
			i := img.PixOffset(x, y)
			img.Pix[i], img.Pix[i+1], img.Pix[i+2], img.Pix[i+3] = v, v, v, 255
		}
	}
	e := EmbedImage(img)
	if len(e) != EmbedDim {
		t.Fatalf("dim = %d", len(e))
	}
	if e[0] <= 0 || e[7] >= 0 {
		t.Errorf("left cell %.3f, right cell %.3f", e[0], e[7])
	}
	if math.Abs(vecNorm(e)-1) > 1e-9 {
		t.Error("image embedding not normalized")
	}
	// Embedding must be resolution-invariant for the same content.
	big := image.NewRGBA(image.Rect(0, 0, 256, 256))
	for y := 0; y < 256; y++ {
		for x := 0; x < 256; x++ {
			v := uint8(40)
			if x < 128 {
				v = 220
			}
			i := big.PixOffset(x, y)
			big.Pix[i], big.Pix[i+1], big.Pix[i+2], big.Pix[i+3] = v, v, v, 255
		}
	}
	if Cosine(e, EmbedImage(big)) < 0.999 {
		t.Error("embedding not resolution invariant")
	}
}

func TestCosineProperties(t *testing.T) {
	f := func(a, b [8]float64) bool {
		av, bv := a[:], b[:]
		// Bound magnitudes: astronomically large inputs overflow the
		// dot product, which is out of scope for embedding vectors.
		for i := range av {
			av[i] = math.Remainder(av[i], 1e6)
			bv[i] = math.Remainder(bv[i], 1e6)
		}
		c := Cosine(av, bv)
		if math.IsNaN(c) || c < -1.0001 || c > 1.0001 {
			return false
		}
		return math.Abs(Cosine(av, bv)-Cosine(bv, av)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	v := []float64{1, 2, 3}
	if math.Abs(Cosine(v, v)-1) > 1e-9 {
		t.Error("cos(v,v) != 1")
	}
	if Cosine(v, []float64{0, 0, 0}) != 0 {
		t.Error("cos with zero vector should be 0")
	}
	if Cosine(v, []float64{1, 2}) != 0 {
		t.Error("cos with mismatched lengths should be 0")
	}
}

func TestCLIPMapping(t *testing.T) {
	if got := CLIPScoreFromCosine(0); got != 0.09 {
		t.Errorf("floor = %v", got)
	}
	if got := CLIPScoreFromCosine(1); got != 0.35 {
		t.Errorf("ceil = %v", got)
	}
	if got := CLIPScoreFromCosine(-0.5); got != 0.09 {
		t.Errorf("negative cos = %v, want floor", got)
	}
	// Round trip through the inverse used for calibration.
	for _, s := range []float64{0.19, 0.27, 0.32} {
		a := AlignmentForCLIP(s)
		if got := CLIPScoreFromCosine(a); math.Abs(got-s) > 1e-9 {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	if AlignmentForCLIP(0.01) != 0 || AlignmentForCLIP(0.99) != 1 {
		t.Error("AlignmentForCLIP not clamped")
	}
}

func TestSBERTScore(t *testing.T) {
	ref := "trail starts at the lake and climbs to panoramic summit views"
	same := SBERTScore(ref, ref)
	if same < 0.99 {
		t.Errorf("identical texts = %.3f", same)
	}
	para := SBERTScore(ref, "the trail climbs from the lake toward summit views with panoramic scenery")
	unrel := SBERTScore(ref, "interest rates and quarterly bond yields fell sharply")
	if para <= unrel {
		t.Errorf("paraphrase %.3f <= unrelated %.3f", para, unrel)
	}
	if para < 0.75 {
		t.Errorf("paraphrase = %.3f, too low", para)
	}
	if unrel > 0.5 {
		t.Errorf("unrelated = %.3f, too high", unrel)
	}
}

func TestOvershoot(t *testing.T) {
	if got := Overshoot(110, 100); math.Abs(got-0.10) > 1e-9 {
		t.Errorf("overshoot = %v", got)
	}
	if got := Overshoot(90, 100); math.Abs(got+0.10) > 1e-9 {
		t.Errorf("undershoot = %v", got)
	}
	if Overshoot(50, 0) != 0 {
		t.Error("zero want should yield 0")
	}
}

func TestPercentileAndMean(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	if got := Mean(xs); got != 3 {
		t.Errorf("mean = %v", got)
	}
	if Percentile(nil, 50) != 0 || Mean(nil) != 0 {
		t.Error("empty inputs should yield 0")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}

func TestEloExpectedScore(t *testing.T) {
	if got := ExpectedScore(1000, 1000); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("equal ratings = %v", got)
	}
	// 400 points difference = 10:1 odds.
	if got := ExpectedScore(1400, 1000); math.Abs(got-10.0/11) > 1e-9 {
		t.Errorf("+400 = %v", got)
	}
	if got := ExpectedScore(1000, 1400) + ExpectedScore(1400, 1000); math.Abs(got-1) > 1e-9 {
		t.Error("expected scores don't sum to 1")
	}
}

func TestEloBattleConservation(t *testing.T) {
	a := NewArena()
	rng := rand.New(rand.NewSource(1))
	players := []string{"p1", "p2", "p3"}
	for i := 0; i < 100; i++ {
		p1, p2 := players[rng.Intn(3)], players[rng.Intn(3)]
		if p1 == p2 {
			continue
		}
		a.Battle(p1, p2, float64(rng.Intn(2)))
	}
	var sum float64
	for _, p := range players {
		sum += a.Rating(p)
	}
	if math.Abs(sum-3*a.InitialRating) > 1e-6 {
		t.Errorf("rating sum = %v, want %v (Elo is zero-sum)", sum, 3*a.InitialRating)
	}
}

func TestSimulateArenaConvergence(t *testing.T) {
	// Table 1 latents: the arena must recover the published ordering
	// and land near the latent values.
	latent := map[string]float64{
		"sd2.1-base":   688,
		"sd3-medium":   895,
		"sd3.5-medium": 927,
		"dalle-3":      923,
	}
	a := SimulateArena(latent, 400, 7)
	st := a.Standings()
	if st[0].Player != "sd3.5-medium" && st[0].Player != "dalle-3" {
		t.Errorf("leader = %s", st[0].Player)
	}
	if st[len(st)-1].Player != "sd2.1-base" {
		t.Errorf("last = %s", st[len(st)-1].Player)
	}
	for p, l := range latent {
		got := a.Rating(p)
		if math.Abs(got-l) > 60 {
			t.Errorf("%s converged to %.0f, latent %.0f", p, got, l)
		}
	}
	// Determinism.
	b := SimulateArena(latent, 400, 7)
	for p := range latent {
		if a.Rating(p) != b.Rating(p) {
			t.Error("SimulateArena not deterministic for equal seeds")
		}
	}
}

func vecNorm(v []float64) float64 {
	var n float64
	for _, x := range v {
		n += x * x
	}
	return math.Sqrt(n)
}

func BenchmarkEmbedText(b *testing.B) {
	s := "A detailed photograph of an alpine landscape with a turquoise lake below snowy peaks"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EmbedText(s)
	}
}

func BenchmarkEmbedImage224(b *testing.B) {
	img := image.NewRGBA(image.Rect(0, 0, 224, 224))
	for i := range img.Pix {
		img.Pix[i] = byte(i * 31)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EmbedImage(img)
	}
}
