package metrics

import "math"

// SBERT-score analogue, paper §6.3.2: semantic similarity between the
// bullet points sent over the wire and the paragraph a text model
// expanded them into. The paper's models score 0.82–0.91.
//
// Real SBERT embeds sentences with a Siamese BERT. Here similarity is
// the cosine of hashed content-word vectors with sublinear term
// weighting, mapped through a concave curve that mirrors SBERT's
// behaviour: texts sharing most content words score high even when
// filler differs, and unrelated texts score near typicalFloor rather
// than zero (sentence encoders rarely emit orthogonal vectors for
// same-language text).
const sbertFloor = 0.30

// SBERTScore returns the semantic similarity of two texts in [0, 1].
func SBERTScore(reference, candidate string) float64 {
	a := embedBag(reference)
	b := embedBag(candidate)
	cos := Cosine(a, b)
	if cos < 0 {
		cos = 0
	}
	return sbertFloor + (1-sbertFloor)*cos
}

// embedBag embeds text as a hashed bag of content words with
// log-scaled counts (no bigrams: SBERT-style similarity is more
// tolerant of word order than the CLIP-text embedding).
func embedBag(s string) []float64 {
	counts := map[string]int{}
	for _, w := range ContentWords(s) {
		counts[w]++
	}
	v := make([]float64, EmbedDim)
	for w, c := range counts {
		idx, sign := hashToken(w)
		v[idx] += sign * (1 + math.Log(float64(c)))
	}
	return normalize(v)
}

// WordCount returns the number of word tokens in s.
func WordCount(s string) int { return len(Tokenize(s)) }

// Overshoot returns the relative deviation of got from want word
// counts, as a fraction: +0.10 means 10% too long (paper §6.3.2,
// "Word Length Overshoot ... percentage of words above or below the
// requested number").
func Overshoot(gotWords, wantWords int) float64 {
	if wantWords == 0 {
		return 0
	}
	return float64(gotWords-wantWords) / float64(wantWords)
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation. xs need not be sorted; it is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
