package metrics

import (
	"math"
	"math/rand"
	"sort"
)

// Elo rating engine, paper §6.3.1 and reference [18].
//
// The paper's ELO column comes from the Artificial Analysis
// text-to-image arena: human voters see two generations for the same
// prompt and pick a winner; ratings evolve by the standard Elo
// update. This package implements that system. Experiments feed it
// simulated voters whose preferences follow the models' latent
// quality, and verify that round-robin play converges to the latent
// ratings (which are calibrated to the paper's published values).

// An Arena maintains Elo ratings for a set of players.
type Arena struct {
	// K is the Elo K-factor (update step size).
	K float64
	// InitialRating is assigned to new players.
	InitialRating float64

	ratings map[string]float64
	games   map[string]int
}

// NewArena returns an arena with arena-typical parameters: K=32,
// initial rating 1000.
func NewArena() *Arena {
	return &Arena{
		K:             32,
		InitialRating: 1000,
		ratings:       map[string]float64{},
		games:         map[string]int{},
	}
}

// Rating returns the player's current rating.
func (a *Arena) Rating(player string) float64 {
	if r, ok := a.ratings[player]; ok {
		return r
	}
	return a.InitialRating
}

// Games returns how many battles the player has fought.
func (a *Arena) Games(player string) int { return a.games[player] }

// ExpectedScore returns the probability that a player rated ra beats
// one rated rb under the Elo logistic model.
func ExpectedScore(ra, rb float64) float64 {
	return 1 / (1 + math.Pow(10, (rb-ra)/400))
}

// Battle records one pairwise comparison. score is 1 if p1 won, 0 if
// p2 won, 0.5 for a tie.
func (a *Arena) Battle(p1, p2 string, score float64) {
	r1, r2 := a.Rating(p1), a.Rating(p2)
	e1 := ExpectedScore(r1, r2)
	a.ratings[p1] = r1 + a.K*(score-e1)
	a.ratings[p2] = r2 + a.K*((1-score)-(1-e1))
	a.games[p1]++
	a.games[p2]++
}

// Standings returns players sorted by descending rating.
func (a *Arena) Standings() []Standing {
	out := make([]Standing, 0, len(a.ratings))
	for p, r := range a.ratings {
		out = append(out, Standing{Player: p, Rating: r, Games: a.games[p]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rating != out[j].Rating {
			return out[i].Rating > out[j].Rating
		}
		return out[i].Player < out[j].Player
	})
	return out
}

// A Standing is one row of an arena leaderboard.
type Standing struct {
	Player string
	Rating float64
	Games  int
}

// SimulateArena plays rounds of round-robin battles between players
// whose true strengths are given by latent ratings, with voter
// decisions drawn from the Elo logistic at those latents. It returns
// the arena after play. Deterministic for a given seed.
//
// This is the reproduction path for Table 1's ELO column: latents are
// the calibration targets and the arena demonstrates the measurement
// process converging onto them.
func SimulateArena(latent map[string]float64, rounds int, seed int64) *Arena {
	players := make([]string, 0, len(latent))
	for p := range latent {
		players = append(players, p)
	}
	sort.Strings(players)
	rng := rand.New(rand.NewSource(seed))
	a := NewArena()
	// Anchor the arena mean to the latent mean so absolute values are
	// comparable (arena sites anchor against reference models).
	var mean float64
	for _, p := range players {
		mean += latent[p]
	}
	mean /= float64(len(players))
	a.InitialRating = mean

	for round := 0; round < rounds; round++ {
		// Decaying K stabilizes late rounds, as rating sites do; the
		// harmonic schedule keeps late-round random-walk noise small.
		a.K = 32 / (1 + float64(round)/20)
		for i := 0; i < len(players); i++ {
			for j := i + 1; j < len(players); j++ {
				p := ExpectedScore(latent[players[i]], latent[players[j]])
				score := 0.0
				if rng.Float64() < p {
					score = 1
				}
				a.Battle(players[i], players[j], score)
			}
		}
	}
	return a
}
