// Package metrics implements the content-quality metrics of paper §6.3:
// a CLIP-score analogue for prompt↔image similarity, an SBERT-score
// analogue for reference↔candidate text similarity, word-length
// overshoot, and the Elo rating engine used for the user-opinion
// column of Table 1.
//
// Substitution note (see DESIGN.md): the real metrics run neural
// encoders. Here both text and images are embedded with deterministic
// feature hashing into a shared 64-dimensional space; generators in
// internal/genai plant prompt features into the media they emit with a
// per-model fidelity, so the measured similarity reproduces the
// paper's score ordering while remaining a pure function of the bytes
// being scored.
package metrics

import (
	"hash/fnv"
	"image"
	"math"
	"strings"
	"unicode"
)

// EmbedDim is the dimensionality of the shared embedding space. It is
// also the cell count of the image feature grid (8×8).
const EmbedDim = 64

// stopwords are excluded from text embeddings so that filler does not
// dominate content words.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true,
	"of": true, "in": true, "on": true, "at": true, "to": true,
	"is": true, "are": true, "was": true, "were": true, "with": true,
	"for": true, "by": true, "as": true, "it": true, "its": true,
	"this": true, "that": true, "be": true, "from": true,
}

// Tokenize lowercases s and splits it into word tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsNumber(r)
	})
}

// ContentWords returns Tokenize(s) minus stopwords.
func ContentWords(s string) []string {
	var out []string
	for _, w := range Tokenize(s) {
		if !stopwords[w] {
			out = append(out, w)
		}
	}
	return out
}

func hashToken(tok string) (idx int, sign float64) {
	h := fnv.New64a()
	h.Write([]byte(tok))
	v := h.Sum64()
	idx = int(v % EmbedDim)
	if (v>>32)&1 == 0 {
		return idx, 1
	}
	return idx, -1
}

// EmbedText embeds s by signed feature hashing of its content words
// and word bigrams, L2-normalized. The zero vector is returned for
// text with no content words.
func EmbedText(s string) []float64 {
	words := ContentWords(s)
	v := make([]float64, EmbedDim)
	for i, w := range words {
		idx, sign := hashToken(w)
		v[idx] += sign
		if i+1 < len(words) {
			idx, sign := hashToken(words[i] + "_" + words[i+1])
			v[idx] += sign * 0.5
		}
	}
	return normalize(v)
}

// EmbedImage extracts the 64-dimensional feature vector of an image:
// the mean-centered luminance of each cell in an 8×8 grid,
// L2-normalized. Generators plant prompt features in exactly these
// statistics, so this is the "CLIP image encoder" of the simulation.
func EmbedImage(img image.Image) []float64 {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	if w == 0 || h == 0 {
		return make([]float64, EmbedDim)
	}
	const grid = 8
	sums := make([]float64, EmbedDim)
	counts := make([]int, EmbedDim)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bb, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			lum := 0.299*float64(r>>8) + 0.587*float64(g>>8) + 0.114*float64(bb>>8)
			cell := (y*grid/h)*grid + x*grid/w
			sums[cell] += lum
			counts[cell]++
		}
	}
	v := make([]float64, EmbedDim)
	var mean float64
	for i := range v {
		if counts[i] > 0 {
			v[i] = sums[i] / float64(counts[i])
		}
		mean += v[i]
	}
	mean /= EmbedDim
	for i := range v {
		v[i] -= mean
	}
	return normalize(v)
}

// Cosine returns the cosine similarity of two vectors (0 for zero
// vectors or mismatched lengths).
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func normalize(v []float64) []float64 {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return v
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
	return v
}
