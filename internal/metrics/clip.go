package metrics

import "image"

// CLIP-score analogue, paper §6.3.1.
//
// The real CLIP score is a cosine in a joint text–image space; its
// observed range in the paper runs from 0.09 (a random image against
// a prompt) to 0.32 (DALLE-3). The mapping below reproduces that
// range: a raw alignment of 0 (uncorrelated features) scores
// clipFloor and a perfect alignment scores clipCeil.
const (
	clipFloor = 0.09
	clipCeil  = 0.35
)

// CLIPScore measures how well img matches prompt. It embeds both into
// the shared feature space and maps the cosine onto the calibrated
// CLIP scale.
func CLIPScore(prompt string, img image.Image) float64 {
	return CLIPScoreFromCosine(Cosine(EmbedText(prompt), EmbedImage(img)))
}

// CLIPScoreFromCosine maps a raw feature-space alignment in [-1, 1]
// onto the CLIP scale.
func CLIPScoreFromCosine(cos float64) float64 {
	if cos < 0 {
		cos = 0
	}
	return clipFloor + (clipCeil-clipFloor)*cos
}

// AlignmentForCLIP inverts CLIPScoreFromCosine: the raw alignment a
// generator must achieve for a target CLIP score. Used for model
// calibration.
func AlignmentForCLIP(score float64) float64 {
	a := (score - clipFloor) / (clipCeil - clipFloor)
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}
