package http3

import (
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"sww/internal/http2"
	"sww/internal/quic"
)

// Config mirrors the SWW-relevant parts of the HTTP/2 configuration.
type Config struct {
	// GenAbility is advertised in the HTTP/3 SETTINGS frame on the
	// control stream. GenNone suppresses the parameter.
	GenAbility http2.GenAbility

	// ImageModelID / TextModelID mirror §7 model negotiation.
	ImageModelID uint32
	TextModelID  uint32

	// HandshakeTimeout bounds the wait for the peer's control-stream
	// SETTINGS. Zero means 10 s.
	HandshakeTimeout time.Duration
}

func (c Config) handshakeTimeout() time.Duration {
	if c.HandshakeTimeout <= 0 {
		return 10 * time.Second
	}
	return c.HandshakeTimeout
}

// conn is the shared endpoint machinery: control streams in both
// directions plus the peer's settings.
type conn struct {
	sess *quic.Session
	cfg  Config

	mu           sync.Mutex // guards peerSettings
	peerSettings map[uint64]uint64
	seenOnce     sync.Once // a second control stream must not re-close peerSeen
	peerSeen     chan struct{}
}

func newConn(sess *quic.Session, cfg Config) *conn {
	return &conn{sess: sess, cfg: cfg, peerSeen: make(chan struct{})}
}

// startControl opens the local control stream and consumes the
// peer's.
func (c *conn) startControl() error {
	ctrl, err := c.sess.OpenUniStream()
	if err != nil {
		return err
	}
	if _, err := ctrl.Write(quic.AppendVarint(nil, StreamTypeControl)); err != nil {
		return err
	}
	settings := map[uint64]uint64{
		SettingQPACKMaxTableCapacity: 0, // dynamic-table-free QPACK
		SettingQPACKBlockedStreams:   0,
	}
	if c.cfg.GenAbility != http2.GenNone {
		settings[SettingGenAbility] = uint64(c.cfg.GenAbility)
	}
	if c.cfg.ImageModelID != 0 {
		settings[SettingGenImageModel] = uint64(c.cfg.ImageModelID)
	}
	if c.cfg.TextModelID != 0 {
		settings[SettingGenTextModel] = uint64(c.cfg.TextModelID)
	}
	if err := writeFrame(ctrl, FrameSettings, encodeSettings(settings)); err != nil {
		return err
	}

	go c.consumeUniStreams()
	return nil
}

// consumeUniStreams accepts peer unidirectional streams; the control
// stream delivers SETTINGS, unknown stream types are drained and
// dropped (RFC 9114 §6.2: "streams of unknown types ... MUST either
// be aborted or ignored").
func (c *conn) consumeUniStreams() {
	for {
		st, err := c.sess.AcceptUniStream()
		if err != nil {
			return
		}
		go func(st *quic.Stream) {
			stype, err := quic.ReadVarintFrom(st)
			if err != nil {
				return
			}
			if stype != StreamTypeControl {
				io.Copy(io.Discard, st)
				return
			}
			ftype, payload, err := readFrame(st)
			if err != nil || ftype != FrameSettings {
				return
			}
			settings, err := decodeSettings(payload)
			if err != nil {
				return
			}
			c.mu.Lock()
			if c.peerSettings == nil {
				c.peerSettings = settings
			}
			c.mu.Unlock()
			c.seenOnce.Do(func() { close(c.peerSeen) })
			// Keep the control stream open (further frames such as
			// GOAWAY would arrive here).
			io.Copy(io.Discard, st)
		}(st)
	}
}

func (c *conn) waitPeerSettings() error {
	select {
	case <-c.peerSeen:
		return nil
	case <-time.After(c.cfg.handshakeTimeout()):
		return fmt.Errorf("http3: no SETTINGS from peer")
	}
}

// peerGenAbility returns the ability the peer advertised.
func (c *conn) peerGenAbility() (http2.GenAbility, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.peerSettings == nil {
		return http2.GenNone, false
	}
	v, ok := c.peerSettings[SettingGenAbility]
	return http2.GenAbility(v), ok
}

// peerSetting reads one peer setting under the lock.
func (c *conn) peerSetting(id uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peerSettings[id]
}

// negotiated intersects both endpoints' abilities, as in HTTP/2.
func (c *conn) negotiated() http2.GenAbility {
	peer, _ := c.peerGenAbility()
	return c.cfg.GenAbility.Intersect(peer)
}

// A Request is a decoded HTTP/3 request.
type Request struct {
	Method    string
	Scheme    string
	Authority string
	Path      string
	Header    []Field
	Body      []byte

	// PeerGen is the negotiated generative ability, as in HTTP/2.
	PeerGen http2.GenAbility
}

// HeaderValue returns the first value of a regular header.
func (r *Request) HeaderValue(name string) string {
	for _, f := range r.Header {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// A Response is a decoded HTTP/3 response.
type Response struct {
	Status int
	Header []Field
	Body   []byte
}

// HeaderValue returns the first value of a header.
func (r *Response) HeaderValue(name string) string {
	for _, f := range r.Header {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// readMessage reads a HEADERS frame and any DATA frames until the
// stream's FIN.
func readMessage(st *quic.Stream) (fields []Field, body []byte, err error) {
	ftype, payload, err := readFrame(st)
	if err != nil {
		return nil, nil, err
	}
	if ftype != FrameHeaders {
		return nil, nil, fmt.Errorf("http3: first frame type %#x, want HEADERS", ftype)
	}
	fields, err = DecodeFieldSection(payload)
	if err != nil {
		return nil, nil, err
	}
	for {
		ftype, payload, err := readFrame(st)
		if err == io.EOF {
			return fields, body, nil
		}
		if err != nil {
			return nil, nil, err
		}
		switch ftype {
		case FrameData:
			body = append(body, payload...)
			if len(body) > maxMessageBody {
				return nil, nil, fmt.Errorf("http3: message body exceeds %d bytes", maxMessageBody)
			}
		default:
			// Unknown frame types are ignored (§9 extensibility).
		}
	}
}

// maxMessageBody caps one request/response body: an anti-exhaustion
// bound well above any SWW page or asset.
const maxMessageBody = 64 << 20

// writeMessage emits HEADERS (+DATA) and closes the send side. The
// field section is encoded into pooled scratch; writeFrame is done
// with the bytes when it returns.
func writeMessage(st *quic.Stream, fields []Field, body []byte) error {
	sc := getEncodeScratch()
	sc.b = AppendFieldSection(sc.b, fields)
	err := writeFrame(st, FrameHeaders, sc.b)
	putEncodeScratch(sc)
	if err != nil {
		return err
	}
	if len(body) > 0 {
		if err := writeFrame(st, FrameData, body); err != nil {
			return err
		}
	}
	return st.Close()
}

// A Handler serves HTTP/3 requests.
type Handler interface {
	ServeSWW3(w *ResponseWriter, r *Request)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(w *ResponseWriter, r *Request)

// ServeSWW3 calls f.
func (f HandlerFunc) ServeSWW3(w *ResponseWriter, r *Request) { f(w, r) }

// A ResponseWriter accumulates one response; it is flushed when the
// handler returns.
type ResponseWriter struct {
	status int
	header []Field
	body   []byte
}

// WriteHeaders sets the response status and headers. The fields are
// copied, so callers may reuse (or release to a pool) their slice as
// soon as this returns.
func (w *ResponseWriter) WriteHeaders(status int, fields ...Field) {
	w.status = status
	w.header = append(w.header[:0], fields...)
}

// Write appends body bytes.
func (w *ResponseWriter) Write(p []byte) (int, error) {
	w.body = append(w.body, p...)
	return len(p), nil
}

// WriteRetained sets the response body to p by reference when no
// body bytes have been written yet, avoiding the copy for immutable
// cached replies. The slice is re-capped so a subsequent Write cannot
// grow into p's backing array; if body bytes already exist, it falls
// back to copying.
func (w *ResponseWriter) WriteRetained(p []byte) (int, error) {
	if w.body == nil {
		w.body = p[:len(p):len(p)]
		return len(p), nil
	}
	return w.Write(p)
}

// A Server serves HTTP/3 sessions.
type Server struct {
	Handler Handler
	Config  Config
}

// ServeConn serves one underlying reliable connection, blocking until
// the session ends.
func (s *Server) ServeConn(nc net.Conn) error {
	sess := quic.NewSession(nc, false)
	defer sess.Close()
	c := newConn(sess, s.Config)
	if err := c.startControl(); err != nil {
		return err
	}
	for {
		st, err := sess.AcceptStream()
		if err != nil {
			return err
		}
		go s.serveStream(c, st)
	}
}

// StartConn serves nc in the background and returns a handle for
// negotiation inspection.
func (s *Server) StartConn(nc net.Conn) *ServerConn {
	sc := &ServerConn{}
	sess := quic.NewSession(nc, false)
	c := newConn(sess, s.Config)
	sc.c = c
	go func() {
		if err := c.startControl(); err != nil {
			sess.Close()
			return
		}
		for {
			st, err := sess.AcceptStream()
			if err != nil {
				return
			}
			go s.serveStream(c, st)
		}
	}()
	return sc
}

// A ServerConn is one served session.
type ServerConn struct{ c *conn }

// Negotiated returns the shared generative ability.
func (sc *ServerConn) Negotiated() http2.GenAbility { return sc.c.negotiated() }

// WaitClientSettings blocks until the client's SETTINGS arrived.
func (sc *ServerConn) WaitClientSettings() error { return sc.c.waitPeerSettings() }

// Close tears the session down.
func (sc *ServerConn) Close() error { return sc.c.sess.Close() }

func (s *Server) serveStream(c *conn, st *quic.Stream) {
	fields, body, err := readMessage(st)
	if err != nil {
		st.Reset(1)
		return
	}
	// Unlike HTTP/2, the SETTINGS frame travels on its own control
	// stream and may be delivered after the first request stream.
	// Capability-dependent serving must wait for it (requests from
	// peers that never send SETTINGS fail the handshake timeout and
	// are served with GenNone).
	c.waitPeerSettings()
	req := &Request{Body: body, PeerGen: c.negotiated()}
	for _, f := range fields {
		switch f.Name {
		case ":method":
			req.Method = f.Value
		case ":scheme":
			req.Scheme = f.Value
		case ":path":
			req.Path = f.Value
		case ":authority":
			req.Authority = f.Value
		default:
			req.Header = append(req.Header, f)
		}
	}
	w := &ResponseWriter{status: 200}
	s.Handler.ServeSWW3(w, req)
	fl := AcquireFieldList()
	fl.Add(":status", strconv.Itoa(w.status))
	fl.Fields = append(fl.Fields, w.header...)
	writeMessage(st, fl.Fields, w.body)
	ReleaseFieldList(fl)
}

// A ClientConn is the client end of an HTTP/3 session.
type ClientConn struct {
	c *conn
}

// NewClientConn performs session setup over nc: both control streams
// plus the SETTINGS exchange, waiting for the server's ability so
// Negotiated is immediately meaningful.
func NewClientConn(nc net.Conn, cfg Config) (*ClientConn, error) {
	sess := quic.NewSession(nc, true)
	c := newConn(sess, cfg)
	if err := c.startControl(); err != nil {
		sess.Close()
		return nil, err
	}
	if err := c.waitPeerSettings(); err != nil {
		sess.Close()
		return nil, err
	}
	return &ClientConn{c: c}, nil
}

// Negotiated returns the shared generative ability.
func (cc *ClientConn) Negotiated() http2.GenAbility { return cc.c.negotiated() }

// ServerGenAbility returns the raw advertised ability.
func (cc *ClientConn) ServerGenAbility() (http2.GenAbility, bool) { return cc.c.peerGenAbility() }

// ServerModelIDs returns the server's advertised model identifiers
// (§7 model negotiation), zero when absent.
func (cc *ClientConn) ServerModelIDs() (image, text uint32) {
	return uint32(cc.c.peerSetting(SettingGenImageModel)),
		uint32(cc.c.peerSetting(SettingGenTextModel))
}

// Close tears the session down.
func (cc *ClientConn) Close() error { return cc.c.sess.Close() }

// ErrCodeRequestCanceled is the QUIC application error code used
// when a request's context fires (mirrors H3_REQUEST_CANCELLED).
const ErrCodeRequestCanceled = 0x10c

// Get issues a GET request.
func (cc *ClientConn) Get(path string, extra ...Field) (*Response, error) {
	return cc.Do("GET", path, extra, nil)
}

// GetContext is Get under a context: cancellation or deadline expiry
// resets the request stream, unwinding any blocked read or write.
func (cc *ClientConn) GetContext(ctx context.Context, path string, extra ...Field) (*Response, error) {
	return cc.DoContext(ctx, "GET", path, extra, nil)
}

// Do issues a request and waits for the full response.
func (cc *ClientConn) Do(method, path string, extra []Field, body []byte) (*Response, error) {
	return cc.DoContext(context.Background(), method, path, extra, body)
}

// DoContext is Do governed by ctx for the whole request/response
// exchange: when ctx fires, the stream is reset locally (failing the
// blocked read) and toward the peer with ErrCodeRequestCanceled.
func (cc *ClientConn) DoContext(ctx context.Context, method, path string, extra []Field, body []byte) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := cc.c.sess.OpenStream()
	if err != nil {
		return nil, err
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { st.Reset(ErrCodeRequestCanceled) })
		defer stop()
	}
	resp, err := cc.do(st, method, path, extra, body)
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return resp, err
}

// do runs one exchange on an already-open stream.
func (cc *ClientConn) do(st *quic.Stream, method, path string, extra []Field, body []byte) (*Response, error) {
	fields := []Field{
		{Name: ":method", Value: method},
		{Name: ":scheme", Value: "https"},
		{Name: ":path", Value: path},
		{Name: ":authority", Value: "sww.local"},
	}
	fields = append(fields, extra...)
	if err := writeMessage(st, fields, body); err != nil {
		return nil, err
	}
	rfields, rbody, err := readMessage(st)
	if err != nil {
		return nil, err
	}
	resp := &Response{Body: rbody}
	for _, f := range rfields {
		if f.Name == ":status" {
			fmt.Sscanf(f.Value, "%d", &resp.Status)
			continue
		}
		resp.Header = append(resp.Header, f)
	}
	if resp.Status == 0 {
		return nil, fmt.Errorf("http3: response missing :status")
	}
	return resp, nil
}
