package http3

import (
	"fmt"
	"io"

	"sww/internal/quic"
)

// HTTP/3 frame types (RFC 9114 §7.2).
const (
	FrameData     = 0x0
	FrameHeaders  = 0x1
	FrameSettings = 0x4
	FrameGoAway   = 0x7
)

// Unidirectional stream types (RFC 9114 §6.2).
const (
	StreamTypeControl = 0x00
)

// HTTP/3 SETTINGS identifiers. RFC 9204 already assigns 0x07
// (QPACK_BLOCKED_STREAMS), so — unlike HTTP/2, where 0x07 was the
// first unreserved value — the SWW parameters use identifiers from
// the unassigned space. The semantics match their HTTP/2 twins.
const (
	SettingQPACKMaxTableCapacity = 0x01
	SettingMaxFieldSectionSize   = 0x06
	SettingQPACKBlockedStreams   = 0x07

	// SettingGenAbility carries the same bitfield as HTTP/2's
	// SETTINGS_GEN_ABILITY.
	SettingGenAbility = 0x5757
	// SettingGenImageModel / SettingGenTextModel mirror the §7 model
	// negotiation parameters.
	SettingGenImageModel = 0x5758
	SettingGenTextModel  = 0x5759
)

// maxFramePayload bounds a single frame read.
const maxFramePayload = 1 << 20

// writeFrame emits one frame on st. Assembly happens in pooled
// scratch: the quic layer copies the bytes into its own mux frame
// before Write returns, so the scratch is immediately reusable.
func writeFrame(st *quic.Stream, ftype uint64, payload []byte) error {
	sc := getEncodeScratch()
	sc.b = quic.AppendVarint(sc.b, ftype)
	sc.b = quic.AppendVarint(sc.b, uint64(len(payload)))
	sc.b = append(sc.b, payload...)
	_, err := st.Write(sc.b)
	putEncodeScratch(sc)
	return err
}

// readFrame reads one frame from st.
func readFrame(st io.Reader) (ftype uint64, payload []byte, err error) {
	ftype, err = quic.ReadVarintFrom(st)
	if err != nil {
		return 0, nil, err
	}
	length, err := quic.ReadVarintFrom(st)
	if err != nil {
		return 0, nil, err
	}
	if length > maxFramePayload {
		return 0, nil, fmt.Errorf("http3: %d byte frame exceeds limit", length)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(st, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return ftype, payload, nil
}

// encodeSettings builds a SETTINGS payload: (id, value) varint pairs.
func encodeSettings(settings map[uint64]uint64) []byte {
	var buf []byte
	// Deterministic order for testability: emit known ids first.
	for _, id := range []uint64{
		SettingQPACKMaxTableCapacity, SettingQPACKBlockedStreams,
		SettingMaxFieldSectionSize,
		SettingGenAbility, SettingGenImageModel, SettingGenTextModel,
	} {
		if v, ok := settings[id]; ok {
			buf = quic.AppendVarint(buf, id)
			buf = quic.AppendVarint(buf, v)
		}
	}
	return buf
}

// decodeSettings parses a SETTINGS payload.
func decodeSettings(payload []byte) (map[uint64]uint64, error) {
	out := map[uint64]uint64{}
	for len(payload) > 0 {
		id, rest, err := quic.ReadVarint(payload)
		if err != nil {
			return nil, err
		}
		v, rest, err := quic.ReadVarint(rest)
		if err != nil {
			return nil, err
		}
		out[id] = v
		payload = rest
	}
	return out, nil
}
