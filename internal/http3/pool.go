package http3

import "sync"

// Pooled per-message scratch, mirroring internal/hpack's field-list
// pool: one encode buffer and one field slice per in-flight message,
// recycled instead of reallocated. Pools store stable pointers so
// recycling never re-boxes a slice header.

// A FieldList is a reusable field slice for assembling one message's
// field set. The acquirer owns it until ReleaseFieldList; encoding
// does not retain the slice.
type FieldList struct {
	Fields []Field
}

var fieldListPool = sync.Pool{
	New: func() any {
		return &FieldList{Fields: make([]Field, 0, 16)}
	},
}

// AcquireFieldList returns an empty field list from the pool.
func AcquireFieldList() *FieldList {
	return fieldListPool.Get().(*FieldList)
}

// ReleaseFieldList clears l (dropping string references so the pool
// does not pin field values) and returns it to the pool.
func ReleaseFieldList(l *FieldList) {
	for i := range l.Fields {
		l.Fields[i] = Field{}
	}
	l.Fields = l.Fields[:0]
	fieldListPool.Put(l)
}

// Add appends a field.
func (l *FieldList) Add(name, value string) {
	l.Fields = append(l.Fields, Field{Name: name, Value: value})
}

type encodeScratch struct{ b []byte }

var encodeScratchPool = sync.Pool{
	New: func() any {
		return &encodeScratch{b: make([]byte, 0, 512)}
	},
}

func getEncodeScratch() *encodeScratch {
	s := encodeScratchPool.Get().(*encodeScratch)
	s.b = s.b[:0]
	return s
}

func putEncodeScratch(s *encodeScratch) {
	encodeScratchPool.Put(s)
}
