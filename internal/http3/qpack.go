// Package http3 implements the paper's §3.1 outlook: "as HTTP/3
// adoption is increasing, future SWW will require HTTP/3 support. We
// believe that similar use of SETTINGS under HTTP/3 can allow to
// advertise client-server GenAI capabilities."
//
// The package maps SWW onto HTTP/3 semantics (RFC 9114) over the
// QUIC-shaped transport of internal/quic: unidirectional control
// streams carrying a SETTINGS frame with the GEN_ABILITY parameter,
// QPACK-encoded header sections on bidirectional request streams, and
// the same fallback behaviour (unknown settings are ignored).
//
// QPACK (RFC 9204) is implemented in its dynamic-table-free mode:
// every field is a Literal Field Line with Literal Name and the
// encoded section prefix pins Required Insert Count and Base to zero.
// That is a fully compliant *encoder* choice; the decoder here
// handles exactly the forms this encoder emits, which suffices for
// SWW endpoints (both ends of the prototype speak it).
package http3

import (
	"errors"
	"fmt"
)

// A Field is one header field.
type Field struct {
	Name, Value string
}

// QPACK decoding errors.
var (
	errQPACKTruncated   = errors.New("http3: truncated field section")
	errQPACKUnsupported = errors.New("http3: unsupported qpack instruction (dynamic table not implemented)")
)

// qpackAppendInt encodes an integer with an n-bit prefix (RFC 9204
// reuses HPACK's §5.1 integers).
func qpackAppendInt(dst []byte, high byte, prefix uint8, v uint64) []byte {
	mask := uint64(1)<<prefix - 1
	if v < mask {
		return append(dst, high|byte(v))
	}
	dst = append(dst, high|byte(mask))
	v -= mask
	for v >= 0x80 {
		dst = append(dst, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func qpackReadInt(buf []byte, prefix uint8) (uint64, []byte, error) {
	if len(buf) == 0 {
		return 0, nil, errQPACKTruncated
	}
	mask := uint64(1)<<prefix - 1
	v := uint64(buf[0]) & mask
	buf = buf[1:]
	if v < mask {
		return v, buf, nil
	}
	var shift uint
	for {
		if len(buf) == 0 {
			return 0, nil, errQPACKTruncated
		}
		b := buf[0]
		buf = buf[1:]
		v += uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, buf, nil
		}
		shift += 7
		if shift > 62 {
			return 0, nil, fmt.Errorf("http3: qpack integer overflow")
		}
	}
}

// AppendFieldSection appends an RFC 9204 encoded field section with
// no dynamic-table references to dst and returns the extended slice.
// The caller owns dst, so a hot sender can reuse one scratch buffer
// across messages with zero intermediate allocations.
func AppendFieldSection(dst []byte, fields []Field) []byte {
	// Encoded Field Section Prefix: Required Insert Count = 0
	// (8-bit prefix), Sign = 0 and Delta Base = 0 (7-bit prefix).
	dst = append(dst, 0x00, 0x00)
	for _, f := range fields {
		// Literal Field Line with Literal Name (§4.5.6):
		// 001 N H NameLen(3+)  — N=0 (may be indexed by intermediaries),
		// H=0 (no Huffman).
		dst = qpackAppendInt(dst, 0x20, 3, uint64(len(f.Name)))
		dst = append(dst, f.Name...)
		dst = qpackAppendInt(dst, 0x00, 7, uint64(len(f.Value)))
		dst = append(dst, f.Value...)
	}
	return dst
}

// EncodeFieldSection encodes fields into a fresh buffer.
func EncodeFieldSection(fields []Field) []byte {
	return AppendFieldSection(nil, fields)
}

// DecodeFieldSection decodes a field section produced by
// EncodeFieldSection (and rejects dynamic-table-dependent sections,
// which SWW endpoints never produce).
func DecodeFieldSection(buf []byte) ([]Field, error) {
	ric, rest, err := qpackReadInt(buf, 8)
	if err != nil {
		return nil, err
	}
	if ric != 0 {
		return nil, errQPACKUnsupported
	}
	base, rest, err := qpackReadInt(rest, 7)
	if err != nil {
		return nil, err
	}
	if base != 0 {
		return nil, errQPACKUnsupported
	}
	var fields []Field
	buf = rest
	for len(buf) > 0 {
		b := buf[0]
		if b&0xe0 != 0x20 {
			return nil, errQPACKUnsupported
		}
		if b&0x08 != 0 {
			return nil, fmt.Errorf("http3: huffman-coded qpack name not supported")
		}
		nameLen, rest, err := qpackReadInt(buf, 3)
		if err != nil {
			return nil, err
		}
		if uint64(len(rest)) < nameLen {
			return nil, errQPACKTruncated
		}
		name := string(rest[:nameLen])
		rest = rest[nameLen:]
		if len(rest) == 0 {
			return nil, errQPACKTruncated
		}
		if rest[0]&0x80 != 0 {
			return nil, fmt.Errorf("http3: huffman-coded qpack value not supported")
		}
		valLen, rest2, err := qpackReadInt(rest, 7)
		if err != nil {
			return nil, err
		}
		if uint64(len(rest2)) < valLen {
			return nil, errQPACKTruncated
		}
		fields = append(fields, Field{Name: name, Value: string(rest2[:valLen])})
		buf = rest2[valLen:]
	}
	return fields, nil
}
