package http3

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"sww/internal/http2"
)

func TestQPACKRoundTrip(t *testing.T) {
	fields := []Field{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/wiki/landscape"},
		{Name: "x-sww-mode", Value: "generative"},
		{Name: "empty-value", Value: ""},
		{Name: "long", Value: strings.Repeat("v", 500)},
	}
	enc := EncodeFieldSection(fields)
	got, err := DecodeFieldSection(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fields) {
		t.Fatalf("%d fields, want %d", len(got), len(fields))
	}
	for i := range fields {
		if got[i] != fields[i] {
			t.Errorf("field %d = %+v, want %+v", i, got[i], fields[i])
		}
	}
}

func TestQPACKPrefix(t *testing.T) {
	// The encoded section must start with the 0,0 prefix (no dynamic
	// table).
	enc := EncodeFieldSection([]Field{{Name: "a", Value: "b"}})
	if enc[0] != 0 || enc[1] != 0 {
		t.Errorf("prefix = %x", enc[:2])
	}
	// Sections demanding dynamic-table state are rejected.
	if _, err := DecodeFieldSection([]byte{0x05, 0x00}); err == nil {
		t.Error("nonzero required insert count should fail")
	}
	if _, err := DecodeFieldSection([]byte{0x00}); err == nil {
		t.Error("truncated prefix should fail")
	}
}

func TestQPACKProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	alpha := "abcdefghijklmnop-:/0123456789"
	randStr := func(n int) string {
		b := make([]byte, rng.Intn(n)+1)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	for iter := 0; iter < 200; iter++ {
		var fields []Field
		for i := 0; i < rng.Intn(8)+1; i++ {
			fields = append(fields, Field{Name: randStr(20), Value: randStr(200)})
		}
		got, err := DecodeFieldSection(EncodeFieldSection(fields))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := range fields {
			if got[i] != fields[i] {
				t.Fatalf("iter %d: field %d mismatch", iter, i)
			}
		}
	}
}

func TestSettingsCodec(t *testing.T) {
	in := map[uint64]uint64{
		SettingGenAbility:            uint64(http2.GenFull),
		SettingGenImageModel:         12345,
		SettingQPACKMaxTableCapacity: 0,
	}
	out, err := decodeSettings(encodeSettings(in))
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range in {
		if out[id] != v {
			t.Errorf("setting %#x = %d, want %d", id, out[id], v)
		}
	}
}

func startH3Pair(t *testing.T, serverCfg, clientCfg Config, h Handler) (*ClientConn, *ServerConn) {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	srv := &Server{Handler: h, Config: serverCfg}
	sc := srv.StartConn(sEnd)
	cc, err := NewClientConn(cEnd, clientCfg)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := sc.WaitClientSettings(); err != nil {
		t.Fatalf("server: %v", err)
	}
	t.Cleanup(func() {
		cc.Close()
		sc.Close()
	})
	return cc, sc
}

func TestH3RequestResponse(t *testing.T) {
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.WriteHeaders(200,
			Field{Name: "content-type", Value: "text/html"},
			Field{Name: "x-echo-path", Value: r.Path})
		fmt.Fprintf(w, "body-for:%s:%s", r.Method, r.Body)
	})
	cc, _ := startH3Pair(t, Config{}, Config{}, h)
	resp, err := cc.Do("POST", "/submit", nil, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if got := resp.HeaderValue("x-echo-path"); got != "/submit" {
		t.Errorf("path = %q", got)
	}
	if string(resp.Body) != "body-for:POST:payload" {
		t.Errorf("body = %q", resp.Body)
	}
}

// TestH3CapabilityMatrix is the §3.1 version of the paper's §6.2
// functionality matrix: the same negotiation over HTTP/3 SETTINGS.
func TestH3CapabilityMatrix(t *testing.T) {
	cases := []struct {
		name           string
		server, client http2.GenAbility
		want           http2.GenAbility
	}{
		{"both-support", http2.GenFull, http2.GenFull, http2.GenFull},
		{"server-only", http2.GenFull, http2.GenNone, http2.GenNone},
		{"client-only", http2.GenNone, http2.GenFull, http2.GenNone},
		{"neither", http2.GenNone, http2.GenNone, http2.GenNone},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var saw http2.GenAbility
			var mu sync.Mutex
			h := HandlerFunc(func(w *ResponseWriter, r *Request) {
				mu.Lock()
				saw = r.PeerGen
				mu.Unlock()
				w.WriteHeaders(200)
				w.Write([]byte("ok"))
			})
			cc, sc := startH3Pair(t, Config{GenAbility: c.server}, Config{GenAbility: c.client}, h)
			if got := cc.Negotiated(); got != c.want {
				t.Errorf("client negotiated %v, want %v", got, c.want)
			}
			if got := sc.Negotiated(); got != c.want {
				t.Errorf("server negotiated %v, want %v", got, c.want)
			}
			resp, err := cc.Get("/")
			if err != nil {
				t.Fatal(err)
			}
			if string(resp.Body) != "ok" {
				t.Errorf("body = %q", resp.Body)
			}
			mu.Lock()
			defer mu.Unlock()
			if saw != c.want {
				t.Errorf("request saw %v, want %v", saw, c.want)
			}
		})
	}
}

func TestH3LargeBody(t *testing.T) {
	payload := bytes.Repeat([]byte("sww3"), 128<<10/4) // 128 KiB
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.WriteHeaders(200)
		w.Write(payload)
	})
	cc, _ := startH3Pair(t, Config{}, Config{}, h)
	resp, err := cc.Get("/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, payload) {
		t.Fatalf("body corrupted: %d bytes", len(resp.Body))
	}
}

func TestH3ConcurrentRequests(t *testing.T) {
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.WriteHeaders(200)
		fmt.Fprintf(w, "echo:%s", r.Path)
	})
	cc, _ := startH3Pair(t, Config{}, Config{}, h)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/c/%d", i)
			resp, err := cc.Get(path)
			if err != nil {
				t.Error(err)
				return
			}
			if string(resp.Body) != "echo:"+path {
				t.Errorf("body = %q", resp.Body)
			}
		}(i)
	}
	wg.Wait()
}

func TestH3ModelNegotiationSettings(t *testing.T) {
	h := HandlerFunc(func(w *ResponseWriter, r *Request) { w.WriteHeaders(200) })
	cc, _ := startH3Pair(t,
		Config{GenAbility: http2.GenFull, ImageModelID: 99, TextModelID: 77},
		Config{GenAbility: http2.GenFull},
		h)
	if img := cc.c.peerSettings[SettingGenImageModel]; img != 99 {
		t.Errorf("image model id = %d", img)
	}
	if txt := cc.c.peerSettings[SettingGenTextModel]; txt != 77 {
		t.Errorf("text model id = %d", txt)
	}
}

func BenchmarkH3RequestResponse(b *testing.B) {
	cEnd, sEnd := net.Pipe()
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.WriteHeaders(200)
		w.Write([]byte("ok"))
	})}
	srv.StartConn(sEnd)
	cc, err := NewClientConn(cEnd, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer cc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cc.Get("/bench"); err != nil {
			b.Fatal(err)
		}
	}
}
