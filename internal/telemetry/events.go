package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// An Event is one entry in the bounded event log: a kind (stable,
// grep-able — "abuse", "degrade", "breaker") plus free-form detail.
type Event struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail"`
}

// An EventLog is a fixed-capacity ring of recent events. Writers
// never block and never allocate beyond the ring; old events are
// overwritten, with Total preserving the true count.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewEventLog builds a log holding the most recent capacity events
// (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Add records one event.
func (l *EventLog) Add(kind, detail string) {
	if l == nil {
		return
	}
	ev := Event{Time: time.Now(), Kind: kind, Detail: detail}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
		return
	}
	l.buf[l.next] = ev
	l.next = (l.next + 1) % cap(l.buf)
}

// Addf is Add with Sprintf formatting of the detail.
func (l *EventLog) Addf(kind, format string, args ...any) {
	if l == nil {
		return
	}
	l.Add(kind, fmt.Sprintf(format, args...))
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Total reports how many events were ever added, including those the
// ring has since overwritten.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
