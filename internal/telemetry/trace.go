package telemetry

import (
	"sync"
	"time"
)

// A Tracer retains the most recent traces in a fixed ring. Traces are
// inserted at Start so in-flight requests are visible at /tracez;
// Finish marks them done with an outcome.
type Tracer struct {
	mu    sync.Mutex
	ring  []*Trace
	next  int
	seq   uint64
	total uint64
}

// NewTracer builds a tracer retaining the last capacity traces
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Trace, 0, capacity)}
}

// Start opens a trace for one request. Nil-safe: a nil tracer returns
// a nil trace, whose span methods all no-op — the disabled-telemetry
// fast path costs one nil check per call site.
func (t *Tracer) Start(proto, path string) *Trace {
	if t == nil {
		return nil
	}
	tr := &Trace{proto: proto, path: path, start: time.Now()}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.total++
	tr.id = t.seq
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		return tr
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % cap(t.ring)
	return tr
}

// Total reports how many traces were ever started.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained traces, oldest first.
func (t *Tracer) Snapshot() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := make([]*Trace, 0, len(t.ring))
	traces = append(traces, t.ring[t.next:]...)
	traces = append(traces, t.ring[:t.next]...)
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.snapshot())
	}
	return out
}

// A Span is one recorded stage of a trace: offset from the trace
// start, duration (zero for point annotations), and an optional note
// ("hit", "gen=basic|img|txt", a shed reason).
type Span struct {
	Stage string        `json:"stage"`
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
	Note  string        `json:"note,omitempty"`
}

// A Trace follows one request through the serving stages. All methods
// are nil-safe and safe for concurrent use (generation spans may be
// recorded from singleflight goroutines).
type Trace struct {
	id    uint64
	proto string
	path  string
	start time.Time

	mu      sync.Mutex
	spans   []Span
	outcome string
	end     time.Time
	done    bool
}

// Note records a zero-duration annotation span.
func (tr *Trace) Note(stage, note string) {
	if tr == nil {
		return
	}
	off := time.Since(tr.start)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.spans = append(tr.spans, Span{Stage: stage, Start: off, Note: note})
}

// StartSpan opens a timed stage; close it with End or EndNote.
func (tr *Trace) StartSpan(stage string) *SpanTimer {
	if tr == nil {
		return nil
	}
	return &SpanTimer{tr: tr, stage: stage, start: time.Now()}
}

// A SpanTimer is an open stage of a trace.
type SpanTimer struct {
	tr    *Trace
	stage string
	start time.Time
}

// End closes the span.
func (sp *SpanTimer) End() { sp.EndNote("") }

// EndNote closes the span with an annotation.
func (sp *SpanTimer) EndNote(note string) {
	if sp == nil {
		return
	}
	tr := sp.tr
	span := Span{
		Stage: sp.stage,
		Start: sp.start.Sub(tr.start),
		Dur:   time.Since(sp.start),
		Note:  note,
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.spans = append(tr.spans, span)
}

// Finish closes the trace with its outcome ("prompt", "cached",
// "traditional", "policy-flip", "shed", "asset", ...). Repeated calls
// keep the first outcome.
func (tr *Trace) Finish(outcome string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return
	}
	tr.done = true
	tr.outcome = outcome
	tr.end = time.Now()
}

// Outcome returns the recorded outcome ("" while in flight).
func (tr *Trace) Outcome() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.outcome
}

// Duration returns the total wall time (so far, if unfinished).
func (tr *Trace) Duration() time.Duration {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return tr.end.Sub(tr.start)
	}
	return time.Since(tr.start)
}

// TraceSnapshot is the immutable view of one trace.
type TraceSnapshot struct {
	ID      uint64        `json:"id"`
	Proto   string        `json:"proto"`
	Path    string        `json:"path"`
	Start   time.Time     `json:"start"`
	Total   time.Duration `json:"total"`
	Outcome string        `json:"outcome"`
	Done    bool          `json:"done"`
	Spans   []Span        `json:"spans"`
}

func (tr *Trace) snapshot() TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	total := time.Since(tr.start)
	if tr.done {
		total = tr.end.Sub(tr.start)
	}
	return TraceSnapshot{
		ID:      tr.id,
		Proto:   tr.proto,
		Path:    tr.path,
		Start:   tr.start,
		Total:   total,
		Outcome: tr.outcome,
		Done:    tr.done,
		Spans:   append([]Span(nil), tr.spans...),
	}
}
