package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter should load 0")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Load() != 0 {
		t.Fatal("nil gauge should load 0")
	}
	var h *Histogram
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram should snapshot empty")
	}

	real := new(Counter)
	real.Add(2)
	real.Inc()
	if real.Load() != 3 {
		t.Fatalf("counter = %d, want 3", real.Load())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 1000 uniform observations over (0, 100ms]: p50 ≈ 50ms,
	// p95 ≈ 95ms, p99 ≈ 99ms. Bucket interpolation is coarse, so
	// allow a wide band — the point is order-of-magnitude sanity,
	// not exactness.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	check := func(name string, got time.Duration, lo, hi time.Duration) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %v, want in [%v, %v]", name, got, lo, hi)
		}
	}
	check("p50", s.P50, 30*time.Millisecond, 70*time.Millisecond)
	check("p95", s.P95, 80*time.Millisecond, 110*time.Millisecond)
	check("p99", s.P99, 90*time.Millisecond, 120*time.Millisecond)
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
	wantSum := time.Duration(1000*1001/2) * 100 * time.Microsecond
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(5 * time.Second) // beyond every bound
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	// The +Inf bucket reports the largest finite bound as a lower
	// bound, never +Inf.
	if s.P99 != 10*time.Millisecond {
		t.Errorf("p99 = %v, want 10ms (largest finite bound)", s.P99)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter(`sww_requests_total{outcome="prompt"}`).Add(7)
	r.Counter(`sww_requests_total{outcome="shed"}`).Add(2)
	adopted := new(Counter)
	adopted.Add(11)
	r.Adopt("sww_overload_admitted_total", adopted)
	r.GaugeFunc("sww_gen_cache_bytes", func() float64 { return 1234 })
	r.Histogram(`sww_request_duration_seconds{outcome="prompt"}`).Observe(3 * time.Millisecond)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()

	for _, want := range []string{
		"# TYPE sww_requests_total counter",
		`sww_requests_total{outcome="prompt"} 7`,
		`sww_requests_total{outcome="shed"} 2`,
		"sww_overload_admitted_total 11",
		"# TYPE sww_gen_cache_bytes gauge",
		"sww_gen_cache_bytes 1234",
		"# TYPE sww_request_duration_seconds histogram",
		`sww_request_duration_seconds_bucket{outcome="prompt",le="0.005"} 1`,
		`sww_request_duration_seconds_bucket{outcome="prompt",le="+Inf"} 1`,
		`sww_request_duration_seconds_count{outcome="prompt"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// One TYPE line per family, even with two labeled series.
	if n := strings.Count(text, "# TYPE sww_requests_total counter"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Addf("k", "event %d", i)
	}
	evs := l.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	if evs[0].Detail != "event 2" || evs[2].Detail != "event 4" {
		t.Fatalf("wrong retention order: %+v", evs)
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
}

func TestTracerRingAndSpans(t *testing.T) {
	tr := NewTracer(2)
	a := tr.Start("h2", "/a")
	sp := a.StartSpan("lookup")
	sp.EndNote("page")
	a.Note("negotiate", "gen=basic")
	a.Finish("prompt")

	b := tr.Start("h2", "/b")
	b.Finish("shed")
	c := tr.Start("h3", "/c") // evicts /a
	c.Finish("cached")

	snaps := tr.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("retained %d traces, want 2", len(snaps))
	}
	if snaps[0].Path != "/b" || snaps[1].Path != "/c" {
		t.Fatalf("wrong traces retained: %+v", snaps)
	}
	if tr.Total() != 3 {
		t.Fatalf("total = %d, want 3", tr.Total())
	}
	if a.Outcome() != "prompt" {
		t.Fatalf("outcome = %q", a.Outcome())
	}

	// Nil tracer and nil trace no-op.
	var nilT *Tracer
	ntr := nilT.Start("h2", "/x")
	ntr.StartSpan("s").End()
	ntr.Note("n", "")
	ntr.Finish("ok")
	if ntr.Outcome() != "" || len(nilT.Snapshot()) != 0 {
		t.Fatal("nil tracer should no-op")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.Start("h2", "/p")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := trace.StartSpan("generate")
			sp.End()
		}()
	}
	wg.Wait()
	trace.Finish("traditional")
	snap := tr.Snapshot()[0]
	if len(snap.Spans) != 16 {
		t.Fatalf("spans = %d, want 16", len(snap.Spans))
	}
}

func TestOpsHandlerEndpoints(t *testing.T) {
	set := NewSet()
	set.Registry.Counter("sww_requests_total").Add(1)
	set.Registry.Histogram("sww_request_duration_seconds").Observe(time.Millisecond)
	set.Eventf("abuse", "kind=%s act=%s", "ping-flood", "ignore")
	tr := set.Trace("h2", "/wiki/landscape")
	tr.StartSpan("lookup").End()
	tr.Finish("prompt")

	h := set.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "sww_requests_total 1") {
		t.Errorf("/metrics missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	var st struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Metrics       struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"metrics"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, rec.Body.String())
	}
	if st.Metrics.Counters["sww_requests_total"] != 1 || len(st.Events) != 1 {
		t.Errorf("/statusz content wrong: %+v", st)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "/wiki/landscape") || !strings.Contains(body, "outcome=prompt") {
		t.Errorf("/tracez missing trace:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/ status %d", rec.Code)
	}
}

// TestConcurrentInstruments is the -race exercise: many goroutines
// hitting every instrument type at once.
func TestConcurrentInstruments(t *testing.T) {
	set := NewSet()
	hist := set.Registry.Histogram("h")
	ctr := set.Registry.Counter("c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ctr.Inc()
				hist.Observe(time.Microsecond)
				set.Eventf("k", "j=%d", j)
				tr := set.Trace("h2", "/x")
				tr.StartSpan("s").End()
				tr.Finish("ok")
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			set.Registry.WritePrometheus(&sb)
			set.Registry.Snapshot()
			set.Traces.Snapshot()
			set.Events.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if ctr.Load() != 8*200 {
		t.Fatalf("counter = %d, want %d", ctr.Load(), 8*200)
	}
	if s := hist.Snapshot(); s.Count != 8*200 {
		t.Fatalf("hist count = %d", s.Count)
	}
}

func TestScheduleClockCorrectsOmission(t *testing.T) {
	// A request intended 50ms ago that completes now carries those
	// 50ms, even if the sender only fired it 1ms ago — the essence of
	// the coordinated-omission fix.
	clock := StartSchedule(time.Now().Add(-50 * time.Millisecond))
	h := NewHistogram(nil)
	lat := clock.ObserveSince(h, 0)
	if lat < 45*time.Millisecond {
		t.Errorf("schedule-based latency = %v, want >= ~50ms", lat)
	}
	if got := h.Snapshot().Count; got != 1 {
		t.Errorf("histogram count = %d, want 1", got)
	}
	// A completion ahead of its intended instant clamps to zero.
	future := StartSchedule(time.Now().Add(time.Hour))
	if lat := future.LatencySince(0); lat != 0 {
		t.Errorf("early completion latency = %v, want 0", lat)
	}
	// Nil histogram is a no-op, like the rest of the package.
	if lat := clock.ObserveSince(nil, 0); lat <= 0 {
		t.Errorf("nil-histogram observe returned %v", lat)
	}
	// Intended is the anchor plus the offset.
	start := time.Unix(1000, 0)
	c := StartSchedule(start)
	if got := c.Intended(3 * time.Second); !got.Equal(start.Add(3 * time.Second)) {
		t.Errorf("Intended = %v", got)
	}
	if !c.Start().Equal(start) {
		t.Errorf("Start = %v", c.Start())
	}
}
