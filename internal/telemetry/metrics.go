// Package telemetry is the repo's dependency-free observability core:
// atomic counters and gauges, fixed-bucket latency histograms with
// quantile snapshots, a bounded ring-buffer event log, and per-request
// trace spans — exported through a Registry as Prometheus text
// exposition and JSON, and served on an opt-in ops listener (see
// ops.go). Every serving layer (core.Server, ResilientClient, the
// overload guard, the http2 abuse ledger, genai.ArtifactCache) records
// into this package instead of keeping bespoke counter structs.
//
// All instruments are nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Trace or *EventLog are no-ops, so instrumented code
// paths need no "is telemetry enabled" branches.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing uint64. Its method set is
// deliberately the subset of atomic.Uint64 the rest of the repo uses
// (Add/Load), so existing counter structs can retype their fields
// without touching callers.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default latency histogram bounds in seconds:
// 100µs to 60s, roughly ×2.5 per step — wide enough to cover both a
// cached asset fetch and a GenWallScale-held generation.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// A Histogram accumulates duration observations into fixed buckets.
// Observation is lock-free (one atomic add per bucket plus sum/count);
// quantiles are estimated at snapshot time by linear interpolation
// within the bucket holding the target rank.
type Histogram struct {
	bounds []float64       // ascending upper bounds, seconds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sumNS  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds in seconds; nil means DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Bucket is one cumulative histogram bucket: the count of
// observations ≤ Le seconds (math.Inf(1) for the overflow bucket).
type Bucket struct {
	Le    float64
	Count uint64
}

// HistogramSnapshot is a point-in-time view of a Histogram, with
// estimated quantiles.
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Buckets []Bucket // cumulative, ending with +Inf
}

// Snapshot captures counts and estimates p50/p95/p99. Quantile
// estimates interpolate linearly inside the winning bucket; ranks
// landing in the +Inf bucket report the largest finite bound (the
// estimate is then a lower bound, which is the honest direction for
// an alerting tail).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Sum:     time.Duration(h.sumNS.Load()),
		Buckets: make([]Bucket, len(h.counts)),
	}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		snap.Buckets[i] = Bucket{Le: le, Count: cum}
	}
	snap.Count = cum
	snap.P50 = h.quantile(snap.Buckets, cum, 0.50)
	snap.P95 = h.quantile(snap.Buckets, cum, 0.95)
	snap.P99 = h.quantile(snap.Buckets, cum, 0.99)
	return snap
}

func (h *Histogram) quantile(buckets []Bucket, total uint64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	prevCum := uint64(0)
	for i, b := range buckets {
		if float64(b.Count) < rank {
			prevCum = b.Count
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = buckets[i-1].Le
		}
		hi := b.Le
		if math.IsInf(hi, 1) {
			// Off the top of the bounds: report the largest finite
			// bound rather than inventing a tail shape.
			return secondsToDuration(lo)
		}
		in := b.Count - prevCum
		if in == 0 {
			return secondsToDuration(hi)
		}
		frac := (rank - float64(prevCum)) / float64(in)
		return secondsToDuration(lo + (hi-lo)*frac)
	}
	return secondsToDuration(buckets[len(buckets)-1].Le)
}

func secondsToDuration(s float64) time.Duration {
	if math.IsInf(s, 1) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(s * float64(time.Second))
}
