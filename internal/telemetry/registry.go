package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// A Registry names and exports instruments. Metric names follow the
// Prometheus convention (`sww_requests_total`); a name may carry a
// label set in curly braces (`sww_requests_total{outcome="prompt"}`),
// which the text exposition merges per family. Get-or-create methods
// make registration idempotent, so several subsystems can share one
// registry without coordination.
//
// All methods are safe for concurrent use and nil-safe: calls on a
// nil *Registry return nil instruments, whose own methods no-op.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]func() float64
	gaugeVars map[string]*Gauge
	hists     map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  map[string]*Counter{},
		gauges:    map[string]func() float64{},
		gaugeVars: map[string]*Gauge{},
		hists:     map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Adopt registers an existing counter under name, so structs that
// embed Counter fields (overload.Counters, the artifact cache) export
// the very counters they already increment. Adopting a second counter
// under a taken name replaces the export binding only.
func (r *Registry) Adopt(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// Gauge returns the settable gauge registered under name, creating it
// on first use — the right shape for values the owner pushes (an
// endpoint's health bit, a replication sequence number) rather than
// values computed at scrape time (use GaugeFunc for those).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugeVars[name]
	if !ok {
		g = new(Gauge)
		r.gaugeVars[name] = g
		r.gauges[name] = func() float64 { return float64(g.Load()) }
	}
	return g
}

// GaugeFunc registers a gauge computed at scrape time — the right
// shape for values another subsystem already tracks (cache bytes,
// pool occupancy, overload level).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// with DefBuckets on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(nil)
		r.hists[name] = h
	}
	return h
}

// splitName separates a metric name from its optional {label} set.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// WithLabel returns name carrying one more Prometheus label, merged
// with any labels already present: WithLabel(`m{a="1"}`, "b", "2") is
// `m{a="1",b="2"}`. Instruments registered under different label
// values are distinct series of the same family.
func WithLabel(name, key, value string) string {
	base, labels := splitName(name)
	return withLabel(base, labels, key+"="+strconv.Quote(value))
}

// withLabel renders base{labels,extra} with correct comma placement.
func withLabel(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

func fmtLe(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4), sorted by metric name for stable diffs.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	typed := map[string]bool{}
	emitType := func(name, kind string) {
		base, _ := splitName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}

	for _, name := range sortedKeys(counters) {
		emitType(name, "counter")
		fmt.Fprintf(w, "%s %d\n", name, counters[name].Load())
	}
	for _, name := range sortedKeys(gauges) {
		emitType(name, "gauge")
		fmt.Fprintf(w, "%s %s\n", name,
			strconv.FormatFloat(gauges[name](), 'g', -1, 64))
	}
	for _, name := range sortedKeys(hists) {
		emitType(name, "histogram")
		base, labels := splitName(name)
		snap := hists[name].Snapshot()
		for _, b := range snap.Buckets {
			fmt.Fprintf(w, "%s %d\n",
				withLabel(base+"_bucket", labels, `le="`+fmtLe(b.Le)+`"`), b.Count)
		}
		fmt.Fprintf(w, "%s %s\n", withLabel(base+"_sum", labels, ""),
			strconv.FormatFloat(snap.Sum.Seconds(), 'g', -1, 64))
		fmt.Fprintf(w, "%s %d\n", withLabel(base+"_count", labels, ""), snap.Count)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HistogramJSON is the JSON shape of one histogram in a Snapshot:
// count, sum, and quantiles in milliseconds (the unit experiment
// reports use).
type HistogramJSON struct {
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50ms      float64 `json:"p50_ms"`
	P95ms      float64 `json:"p95_ms"`
	P99ms      float64 `json:"p99_ms"`
}

// Snapshot is the JSON-able view of a Registry served at /statusz.
type Snapshot struct {
	Counters   map[string]uint64        `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramJSON `json:"histograms"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramJSON{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters[name] = c.Load()
	}
	for name, fn := range gauges {
		snap.Gauges[name] = fn()
	}
	for name, h := range hists {
		hs := h.Snapshot()
		snap.Histograms[name] = HistogramJSON{
			Count:      hs.Count,
			SumSeconds: hs.Sum.Seconds(),
			P50ms:      float64(hs.P50) / float64(time.Millisecond),
			P95ms:      float64(hs.P95) / float64(time.Millisecond),
			P99ms:      float64(hs.P99) / float64(time.Millisecond),
		}
	}
	return snap
}
