package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// A Set bundles the three telemetry surfaces one process exports: the
// metric registry, the trace ring, and the event log. The ops
// listener serves all of them plus pprof.
type Set struct {
	Registry *Registry
	Traces   *Tracer
	Events   *EventLog
	start    time.Time
}

// NewSet builds a Set with a fresh registry, a 256-trace ring and a
// 512-event log.
func NewSet() *Set {
	return &Set{
		Registry: NewRegistry(),
		Traces:   NewTracer(256),
		Events:   NewEventLog(512),
		start:    time.Now(),
	}
}

// Trace opens a request trace; nil-safe for a disabled Set.
func (s *Set) Trace(proto, path string) *Trace {
	if s == nil {
		return nil
	}
	return s.Traces.Start(proto, path)
}

// Eventf records one event; nil-safe for a disabled Set.
func (s *Set) Eventf(kind, format string, args ...any) {
	if s == nil {
		return
	}
	s.Events.Addf(kind, format, args...)
}

// Handler serves the ops surface:
//
//	/metrics      Prometheus text exposition
//	/statusz      JSON snapshot (uptime, metrics, recent events)
//	/tracez       recent request traces, human-readable
//	/debug/pprof  the standard runtime profiles
func (s *Set) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(statusz{
			UptimeSeconds: time.Since(s.start).Seconds(),
			Metrics:       s.Registry.Snapshot(),
			Events:        s.Events.Snapshot(),
			EventsTotal:   s.Events.Total(),
			TracesTotal:   s.Traces.Total(),
		})
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeTracez(w, s.Traces.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve blocks serving the ops handler on l.
func (s *Set) Serve(l net.Listener) error {
	return http.Serve(l, s.Handler())
}

type statusz struct {
	UptimeSeconds float64  `json:"uptime_seconds"`
	Metrics       Snapshot `json:"metrics"`
	Events        []Event  `json:"events"`
	EventsTotal   uint64   `json:"events_total"`
	TracesTotal   uint64   `json:"traces_total"`
}

// writeTracez renders traces newest-first, one block per trace with
// indented spans.
func writeTracez(w http.ResponseWriter, traces []TraceSnapshot) {
	sort.Slice(traces, func(i, j int) bool { return traces[i].ID > traces[j].ID })
	for _, tr := range traces {
		state := tr.Outcome
		if !tr.Done {
			state = "in-flight"
		}
		fmt.Fprintf(w, "#%d %s %s outcome=%s total=%s\n",
			tr.ID, tr.Proto, tr.Path, state, tr.Total.Round(time.Microsecond))
		for _, sp := range tr.Spans {
			note := ""
			if sp.Note != "" {
				note = " " + sp.Note
			}
			fmt.Fprintf(w, "  +%-12s %-12s %s%s\n",
				sp.Start.Round(time.Microsecond),
				sp.Dur.Round(time.Microsecond), sp.Stage, note)
		}
	}
	if len(traces) == 0 {
		fmt.Fprintln(w, "no traces recorded")
	}
}
