package telemetry

import "time"

// A ScheduleClock anchors an open-loop load schedule to the wall
// clock and measures latency from each request's *intended* send time
// rather than its actual send time.
//
// This is the client-side fix for coordinated omission: a closed-loop
// client that stalls behind a slow response silently stops sampling
// exactly while the server is at its worst, so percentiles computed
// from actual send times understate overload latency — sometimes by
// orders of magnitude. Measuring from the schedule makes every delay
// the request experienced (local queueing included) part of its
// latency by construction, which is what a user arriving at that
// instant would have seen.
//
// Usage: build the schedule offsets up front, then
//
//	clock := telemetry.StartSchedule(time.Now())
//	... at each request's offset: fire, then on completion
//	lat := clock.ObserveSince(hist, offset)
type ScheduleClock struct {
	start time.Time
}

// StartSchedule anchors a schedule at start (time.Now() for a run
// beginning immediately; a short future instant to give the engine
// time to spin up its senders).
func StartSchedule(start time.Time) ScheduleClock {
	return ScheduleClock{start: start}
}

// Start returns the schedule's anchor instant.
func (c ScheduleClock) Start() time.Time { return c.start }

// Intended returns the wall-clock instant of the request scheduled at
// offset.
func (c ScheduleClock) Intended(offset time.Duration) time.Time {
	return c.start.Add(offset)
}

// LatencySince returns now minus the intended send instant of the
// request scheduled at offset: the schedule-based latency of a
// request completing now. Completions that somehow precede their
// intended instant (a sender fired early) clamp to zero rather than
// reporting negative latency.
func (c ScheduleClock) LatencySince(offset time.Duration) time.Duration {
	d := time.Since(c.start.Add(offset))
	if d < 0 {
		return 0
	}
	return d
}

// ObserveSince records the schedule-based latency of a request
// completing now into h (nil-safe, like every Histogram) and returns
// it.
func (c ScheduleClock) ObserveSince(h *Histogram, offset time.Duration) time.Duration {
	d := c.LatencySince(offset)
	h.Observe(d)
	return d
}
