// Package convert implements paper §4.2, "Webpage Creation and
// Conversion": turning existing traditional webpages into SWW form.
// "A simple script that goes over a webpage can identify content,
// call a media converter to turn the object into a prompt, and
// replace the existing object with a generated content object."
//
// The two §4.2 concerns are modelled explicitly:
//
//   - *Prompt inversion quality.* The paper used a GPT-4V-class
//     image-to-text model; here Invert derives the prompt from the
//     information a real page carries about an image (alt text,
//     caption, file name — the same signal AlDahoul et al. exploit),
//     and reports a fidelity estimate that drops when that signal is
//     thin. Pages with empty alt text convert poorly, exactly like
//     the paper's "quality of the conversion" limitation.
//
//   - *Identifying what must stay unique.* CMS tagging (§4.2's
//     "one-bit flag ... associated with every linked file") is
//     honored first; heuristics cover untagged content.
package convert

import (
	"fmt"
	"strings"

	"sww/internal/core"
	"sww/internal/html"
	"sww/internal/metrics"
)

// CMS tag attribute and values (§4.2: "The feature would tag every
// content item as generatable or unique.").
const (
	TagAttr        = "data-sww"
	TagGeneratable = "generatable"
	TagUnique      = "unique"
)

// An InvertedPrompt is the result of prompt inversion on one image.
type InvertedPrompt struct {
	Prompt string
	// Fidelity estimates how well a regeneration will match the
	// original, in [0,1]; it grows with the richness of the available
	// description (§4.2: conversion quality is the first limitation).
	Fidelity float64
}

// Invert derives a generation prompt for an <img> element from the
// page's own description of it.
func Invert(img *html.Node) InvertedPrompt {
	alt, _ := img.AttrValue("alt")
	var caption string
	if fig := enclosingFigure(img); fig != nil {
		for _, fc := range fig.ByTag("figcaption") {
			caption = strings.TrimSpace(fc.Text())
		}
	}
	src, _ := img.AttrValue("src")
	fileHint := fileNameHint(src)

	parts := make([]string, 0, 3)
	for _, p := range []string{alt, caption, fileHint} {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	prompt := strings.Join(parts, ", ")
	words := len(metrics.ContentWords(prompt))
	fidelity := 0.15 + 0.08*float64(words)
	if fidelity > 0.9 {
		fidelity = 0.9
	}
	if prompt == "" {
		prompt = "a photograph"
		fidelity = 0.05
	} else {
		prompt += ", detailed photograph"
	}
	return InvertedPrompt{Prompt: prompt, Fidelity: fidelity}
}

func enclosingFigure(n *html.Node) *html.Node {
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Type == html.ElementNode && p.Data == "figure" {
			return p
		}
	}
	return nil
}

// fileNameHint turns "/images/alpine_lake-sunset.jpg" into
// "alpine lake sunset".
func fileNameHint(src string) string {
	if src == "" {
		return ""
	}
	base := src
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i >= 0 {
		base = base[:i]
	}
	base = strings.Map(func(r rune) rune {
		switch r {
		case '-', '_', '+', '%':
			return ' '
		}
		return r
	}, base)
	// Pure identifiers (img0041) carry no semantic signal.
	if strings.IndexFunc(base, func(r rune) bool { return r >= 'a' && r <= 'z' }) < 0 {
		return ""
	}
	if len(strings.Fields(base)) == 1 && len(base) <= 4 {
		return ""
	}
	return strings.ToLower(strings.TrimSpace(base))
}

// SummarizeText turns a prose block into lossless-ish bullet points:
// one bullet per sentence, stopword-trimmed but content-preserving.
// This is the §2.1 transformation ("turned into bullet points that
// can be used in a prompt to generate the relevant text without loss
// of information").
func SummarizeText(text string) (bullets []string, words int) {
	words = metrics.WordCount(text)
	for _, s := range splitSentences(text) {
		cw := metrics.ContentWords(s)
		if len(cw) == 0 {
			continue
		}
		bullets = append(bullets, strings.Join(cw, " "))
	}
	return bullets, words
}

func splitSentences(text string) []string {
	var out []string
	start := 0
	for i := 0; i < len(text); i++ {
		if text[i] == '.' || text[i] == '!' || text[i] == '?' {
			if s := strings.TrimSpace(text[start : i+1]); s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := strings.TrimSpace(text[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

// Options tune the conversion pass.
type Options struct {
	// MinImageWords: images whose inverted prompt has fewer content
	// words stay unique (too little signal to regenerate, §4.2's
	// second limitation).
	MinImageWords int

	// MinTextWords: prose blocks shorter than this stay as-is (the
	// bullet form would not be smaller).
	MinTextWords int

	// DefaultWidth/Height for converted images.
	DefaultWidth, DefaultHeight int
}

// DefaultOptions matches the prototype's behaviour.
func DefaultOptions() Options {
	return Options{MinImageWords: 3, MinTextWords: 60, DefaultWidth: 256, DefaultHeight: 256}
}

// A Report summarizes one conversion pass.
type Report struct {
	ImagesConverted int
	ImagesKept      int
	TextConverted   int
	TextKept        int

	// BytesBefore/BytesAfter are the page HTML sizes (excluding
	// linked media, which the compression accounting covers).
	BytesBefore, BytesAfter int

	// MeanFidelity averages the inversion fidelity of converted
	// images.
	MeanFidelity float64
}

// Convert rewrites doc in place into SWW form and returns a report.
// Elements tagged data-sww="unique" are never converted; elements
// tagged "generatable" always are; untagged content falls to the
// heuristics. origSizes, when non-nil, maps img src to the original
// media size for compression accounting.
func Convert(doc *html.Node, opts Options, origSizes map[string]int) *Report {
	rep := &Report{BytesBefore: len(html.RenderString(doc))}
	var fidelities []float64

	for _, img := range doc.ByTag("img") {
		tag, _ := img.AttrValue(TagAttr)
		if tag == TagUnique {
			rep.ImagesKept++
			continue
		}
		inv := Invert(img)
		if tag != TagGeneratable && len(metrics.ContentWords(inv.Prompt)) < opts.MinImageWords {
			rep.ImagesKept++
			continue
		}
		src, _ := img.AttrValue("src")
		gc := core.GeneratedContent{
			Type: core.ContentImage,
			Meta: core.Metadata{
				Prompt:        inv.Prompt,
				Name:          nameFromSrc(src, rep.ImagesConverted),
				Width:         attrInt(img, "width", opts.DefaultWidth),
				Height:        attrInt(img, "height", opts.DefaultHeight),
				OriginalBytes: origSizes[src],
			},
		}
		div, err := gc.Div()
		if err != nil {
			rep.ImagesKept++
			continue
		}
		img.Parent.ReplaceChild(img, div)
		rep.ImagesConverted++
		fidelities = append(fidelities, inv.Fidelity)
	}

	for _, p := range doc.ByTag("p") {
		tag, _ := p.AttrValue(TagAttr)
		if tag == TagUnique {
			rep.TextKept++
			continue
		}
		text := strings.TrimSpace(p.Text())
		words := metrics.WordCount(text)
		if tag != TagGeneratable && words < opts.MinTextWords {
			rep.TextKept++
			continue
		}
		bullets, _ := SummarizeText(text)
		if len(bullets) == 0 {
			rep.TextKept++
			continue
		}
		gc := core.GeneratedContent{
			Type: core.ContentText,
			Meta: core.Metadata{
				Name:          fmt.Sprintf("text-%d", rep.TextConverted),
				Bullets:       bullets,
				Words:         words,
				OriginalBytes: len(text),
			},
		}
		div, err := gc.Div()
		if err != nil {
			rep.TextKept++
			continue
		}
		p.Parent.ReplaceChild(p, div)
		rep.TextConverted++
	}

	rep.BytesAfter = len(html.RenderString(doc))
	rep.MeanFidelity = metrics.Mean(fidelities)
	return rep
}

func nameFromSrc(src string, i int) string {
	hint := fileNameHint(src)
	if hint == "" {
		return fmt.Sprintf("image-%d", i)
	}
	return strings.ReplaceAll(hint, " ", "-")
}

func attrInt(n *html.Node, name string, def int) int {
	v, ok := n.AttrValue(name)
	if !ok {
		return def
	}
	x := 0
	for _, c := range v {
		if c < '0' || c > '9' {
			return def
		}
		x = x*10 + int(c-'0')
	}
	if x == 0 {
		return def
	}
	return x
}
