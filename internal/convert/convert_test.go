package convert

import (
	"strings"
	"testing"

	"sww/internal/core"
	"sww/internal/device"
	"sww/internal/genai/imagegen"
	"sww/internal/genai/textgen"
	"sww/internal/html"
)

func TestInvertFromAltText(t *testing.T) {
	doc := html.Parse(`<img src="/i/1.jpg" alt="a red lighthouse on a rocky coast at sunset">`)
	inv := Invert(doc.ByTag("img")[0])
	if !strings.Contains(inv.Prompt, "lighthouse") || !strings.Contains(inv.Prompt, "rocky coast") {
		t.Errorf("prompt = %q", inv.Prompt)
	}
	if inv.Fidelity < 0.5 {
		t.Errorf("fidelity = %.2f for a rich alt text", inv.Fidelity)
	}
}

func TestInvertFromCaption(t *testing.T) {
	doc := html.Parse(`<figure><img src="/i/2.jpg"><figcaption>Morning fog over the old harbor</figcaption></figure>`)
	inv := Invert(doc.ByTag("img")[0])
	if !strings.Contains(inv.Prompt, "harbor") {
		t.Errorf("prompt = %q, caption not used", inv.Prompt)
	}
}

func TestInvertFromFileName(t *testing.T) {
	doc := html.Parse(`<img src="/photos/alpine_lake-sunrise.jpg">`)
	inv := Invert(doc.ByTag("img")[0])
	if !strings.Contains(inv.Prompt, "alpine lake sunrise") {
		t.Errorf("prompt = %q, filename hint not used", inv.Prompt)
	}
}

func TestInvertNoSignal(t *testing.T) {
	doc := html.Parse(`<img src="/i/IMG_0417.JPG">`)
	inv := Invert(doc.ByTag("img")[0])
	if inv.Fidelity > 0.3 {
		t.Errorf("fidelity = %.2f for a signal-free image, want low", inv.Fidelity)
	}
}

func TestFileNameHint(t *testing.T) {
	cases := map[string]string{
		"/photos/alpine_lake-sunrise.jpg": "alpine lake sunrise",
		"/i/IMG_0417.JPG":                 "img 0417", // lowercased words but short id... see below
		"/x/0417.png":                     "",
		"":                                "",
		"/a/b/c/x.png":                    "",
	}
	for in, want := range cases {
		got := fileNameHint(in)
		if in == "/i/IMG_0417.JPG" {
			// Mixed id forms are acceptable either way; just require
			// no crash and lowercase output.
			if got != strings.ToLower(got) {
				t.Errorf("hint(%q) = %q not lowercased", in, got)
			}
			continue
		}
		if got != want {
			t.Errorf("hint(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSummarizeText(t *testing.T) {
	text := "The council approved the plan. It will cost ninety million. Work starts in january!"
	bullets, words := SummarizeText(text)
	if len(bullets) != 3 {
		t.Fatalf("%d bullets: %v", len(bullets), bullets)
	}
	if words != 14 {
		t.Errorf("words = %d", words)
	}
	if !strings.Contains(bullets[0], "council") || !strings.Contains(bullets[0], "approved") {
		t.Errorf("bullet 0 = %q", bullets[0])
	}
	// Stopwords dropped.
	if strings.Contains(" "+bullets[0]+" ", " the ") {
		t.Errorf("bullet 0 kept stopwords: %q", bullets[0])
	}
}

func testPage() *html.Node {
	return html.Parse(`<!DOCTYPE html><html><body>
<img src="/stock/mountain-panorama-dawn.jpg" alt="panoramic mountain view at dawn with pink light on the peaks" width="512" height="512">
<img src="/photos/me-at-summit.jpg" alt="the author at the summit" data-sww="unique">
<img src="/x/0001.png">
<p>` + strings.Repeat("The valley trail passes several historic farms and offers wide views over the river. ", 6) + `</p>
<p>Short note.</p>
<p data-sww="unique">Contact us at the address below for bookings and questions.</p>
</body></html>`)
}

func TestConvertPage(t *testing.T) {
	doc := testPage()
	rep := Convert(doc, DefaultOptions(), map[string]int{
		"/stock/mountain-panorama-dawn.jpg": 30_000,
	})
	if rep.ImagesConverted != 1 {
		t.Errorf("images converted = %d, want 1", rep.ImagesConverted)
	}
	if rep.ImagesKept != 2 { // the tagged-unique photo and the signal-free one
		t.Errorf("images kept = %d, want 2", rep.ImagesKept)
	}
	if rep.TextConverted != 1 {
		t.Errorf("text converted = %d, want 1", rep.TextConverted)
	}
	if rep.TextKept != 2 { // the short note and the tagged-unique paragraph
		t.Errorf("text kept = %d, want 2", rep.TextKept)
	}
	if rep.MeanFidelity < 0.5 {
		t.Errorf("mean fidelity = %.2f", rep.MeanFidelity)
	}

	// The produced divs must parse back and carry accounting.
	phs, errs := core.FindPlaceholders(doc)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	if len(phs) != 2 {
		t.Fatalf("%d placeholders", len(phs))
	}
	var img core.Placeholder
	for _, ph := range phs {
		if ph.Content.Type == core.ContentImage {
			img = ph
		}
	}
	if img.Content.Meta.OriginalBytes != 30_000 {
		t.Errorf("original bytes = %d", img.Content.Meta.OriginalBytes)
	}
	if img.Content.Meta.Width != 512 {
		t.Errorf("width = %d, want preserved 512", img.Content.Meta.Width)
	}
	// Unique content untouched.
	if len(doc.ByTag("img")) != 2 {
		t.Errorf("unique images = %d, want 2 kept", len(doc.ByTag("img")))
	}
	if !strings.Contains(html.RenderString(doc), "Contact us") {
		t.Error("unique paragraph lost")
	}
}

func TestConvertTaggedGeneratableWins(t *testing.T) {
	// The CMS tag forces conversion even when heuristics would skip.
	doc := html.Parse(`<img src="/x/0001.png" data-sww="generatable"><p data-sww="generatable">Tiny.</p>`)
	rep := Convert(doc, DefaultOptions(), nil)
	if rep.ImagesConverted != 1 || rep.TextConverted != 1 {
		t.Errorf("converted %d/%d, want 1/1", rep.ImagesConverted, rep.TextConverted)
	}
}

// TestConvertThenProcess is the full §4.2→§4.1 loop: convert a
// traditional page, then run the client pipeline on the result.
func TestConvertThenProcess(t *testing.T) {
	doc := testPage()
	Convert(doc, DefaultOptions(), nil)
	proc, err := core.NewPageProcessor(device.Laptop, imagegen.SD3Medium, textgen.DeepSeek8)
	if err != nil {
		t.Fatal(err)
	}
	assets, report, err := proc.Process(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Items) != 2 {
		t.Fatalf("%d generated items", len(report.Items))
	}
	if len(assets) != 1 {
		t.Fatalf("%d image assets", len(assets))
	}
	// The regenerated text must carry the original's content words.
	if !strings.Contains(html.RenderString(doc), "valley") {
		t.Error("converted text lost content")
	}
}

func TestConvertIdempotentOnSWWPages(t *testing.T) {
	doc := testPage()
	Convert(doc, DefaultOptions(), nil)
	before := html.RenderString(doc)
	rep := Convert(doc, DefaultOptions(), nil)
	if rep.ImagesConverted != 0 || rep.TextConverted != 0 {
		t.Errorf("second pass converted %d/%d, want 0/0",
			rep.ImagesConverted, rep.TextConverted)
	}
	if html.RenderString(doc) != before {
		t.Error("second conversion changed the page")
	}
}

func TestAttrInt(t *testing.T) {
	doc := html.Parse(`<img width="300" height="abc">`)
	img := doc.ByTag("img")[0]
	if got := attrInt(img, "width", 256); got != 300 {
		t.Errorf("width = %d", got)
	}
	if got := attrInt(img, "height", 256); got != 256 {
		t.Errorf("bad height should fall back: %d", got)
	}
	if got := attrInt(img, "missing", 128); got != 128 {
		t.Errorf("missing attr = %d", got)
	}
}
