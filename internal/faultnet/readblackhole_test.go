package faultnet

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestReadBlackhole: after the byte threshold, reads hang (like an
// inbound partition) while the write direction keeps flowing — the
// asymmetric fault — and Close releases the parked reader with
// ErrReadBlackholed.
func TestReadBlackhole(t *testing.T) {
	peer, raw := net.Pipe()
	c := Wrap(raw, Config{ReadBlackholeAfter: 4})
	defer peer.Close()

	go func() {
		peer.Write([]byte("abcdefgh"))
	}()

	// Reads up to the threshold pass, capped so the threshold trips
	// exactly even on one large read.
	buf := make([]byte, 16)
	got := 0
	for got < 4 {
		n, err := c.Read(buf[got:])
		if err != nil {
			t.Fatalf("read before threshold: %v", err)
		}
		got += n
	}
	if got != 4 {
		t.Fatalf("read %d bytes, want exactly the 4-byte threshold", got)
	}

	// The write direction must still work: asymmetric, not a full cut.
	go func() {
		io := make([]byte, 8)
		peer.Read(io)
	}()
	if _, err := c.Write([]byte("pong")); err != nil {
		t.Fatalf("write through a read-blackholed conn: %v", err)
	}

	// The next read parks until Close, then reports the injected fault.
	readErr := make(chan error, 1)
	go func() {
		_, err := c.Read(buf)
		readErr <- err
	}()
	select {
	case err := <-readErr:
		t.Fatalf("blackholed read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	c.Close()
	select {
	case err := <-readErr:
		if !errors.Is(err, ErrReadBlackholed) {
			t.Fatalf("parked read err = %v, want ErrReadBlackholed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not release the parked read")
	}
	if st := c.Stats(); !st.ReadBlackholed || st.BytesRead != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestReadBlackholeDisabled: the zero config leaves reads untouched.
func TestReadBlackholeDisabled(t *testing.T) {
	peer, raw := net.Pipe()
	c := Wrap(raw, Config{})
	defer c.Close()
	defer peer.Close()
	go peer.Write([]byte("0123456789"))
	buf := make([]byte, 10)
	got := 0
	for got < 10 {
		n, err := c.Read(buf[got:])
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got += n
	}
	if st := c.Stats(); st.ReadBlackholed {
		t.Fatal("ReadBlackholed set with fault disabled")
	}
}
