package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoRead drains the peer end into a buffer until EOF or timeout.
func drain(t *testing.T, nc net.Conn) []byte {
	t.Helper()
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&buf, nc)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		nc.Close()
		<-done
	}
	return buf.Bytes()
}

func payload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)
	}
	return p
}

func TestCleanPassThrough(t *testing.T) {
	cli, srv := Pipe(Config{})
	msg := payload(10_000)
	go func() {
		srv.Write(msg)
		srv.Close()
	}()
	got := drain(t, cli)
	if !bytes.Equal(got, msg) {
		t.Fatalf("clean conn altered data: got %d bytes, want %d", len(got), len(msg))
	}
	st := srv.Stats()
	if st.BytesWritten != int64(len(msg)) || st.Corrupted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChunkedWrites(t *testing.T) {
	cli, srv := Pipe(Config{ChunkWrites: 7})
	msg := payload(1000)
	go func() {
		srv.Write(msg)
		srv.Close()
	}()
	got := drain(t, cli)
	if !bytes.Equal(got, msg) {
		t.Fatalf("chunked writes lost data: %d vs %d bytes", len(got), len(msg))
	}
	if st := srv.Stats(); st.Chunks < 1000/7 {
		t.Errorf("chunks = %d, want ≥ %d", st.Chunks, 1000/7)
	}
}

func TestTruncation(t *testing.T) {
	cli, srv := Pipe(Config{TruncateAfter: 600})
	msg := payload(1000)
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Write(msg)
		errCh <- err
	}()
	got := drain(t, cli)
	if err := <-errCh; !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(got) != 600 {
		t.Errorf("peer received %d bytes, want exactly 600", len(got))
	}
	// Subsequent writes stay dead.
	if _, err := srv.Write([]byte("x")); !errors.Is(err, ErrTruncated) {
		t.Errorf("post-truncation write err = %v", err)
	}
}

func TestReset(t *testing.T) {
	cli, srv := Pipe(Config{ResetAfter: 100})
	msg := payload(1000)
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Write(msg)
		errCh <- err
	}()
	got := drain(t, cli)
	if err := <-errCh; !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	if len(got) > 100 {
		t.Errorf("peer received %d bytes after reset threshold 100", len(got))
	}
}

func TestBlackhole(t *testing.T) {
	cli, srv := Pipe(Config{BlackholeAfter: 200})
	msg := payload(1000)
	go func() {
		n, err := srv.Write(msg)
		if n != len(msg) || err != nil {
			t.Errorf("blackholed write = (%d, %v), want silent success", n, err)
		}
		srv.Close()
	}()
	got := drain(t, cli)
	if len(got) != 200 {
		t.Errorf("peer received %d bytes, want 200 then silence", len(got))
	}
	if !srv.Stats().Blackholed {
		t.Error("blackhole not recorded")
	}
}

func TestCorruptionDeterministic(t *testing.T) {
	run := func(seed int64) ([]byte, Stats) {
		cli, srv := Pipe(Config{Seed: seed, CorruptProb: 0.5, ChunkWrites: 64})
		msg := payload(2048)
		go func() {
			srv.Write(msg)
			srv.Close()
		}()
		return drain(t, cli), srv.Stats()
	}
	a, sa := run(42)
	b, sb := run(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if sa.Corrupted == 0 || sa.Corrupted != sb.Corrupted {
		t.Fatalf("corrupted chunks = %d / %d, want equal and nonzero", sa.Corrupted, sb.Corrupted)
	}
	if bytes.Equal(a, payload(2048)) {
		t.Error("corruption flag set but data unchanged")
	}
	c, _ := run(43)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption")
	}
}

func TestLatencyAndBandwidth(t *testing.T) {
	cli, srv := Pipe(Config{WriteLatency: 20 * time.Millisecond, BandwidthBps: 100_000})
	msg := payload(2000) // 20 ms pacing at 100 kB/s + 20 ms latency
	start := time.Now()
	go func() {
		srv.Write(msg)
		srv.Close()
	}()
	got := drain(t, cli)
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Errorf("write completed in %v, pacing not applied", elapsed)
	}
	if !bytes.Equal(got, msg) {
		t.Error("paced conn altered data")
	}
}

func TestPlanSequencing(t *testing.T) {
	p := NewPlan(Config{ResetAfter: 1}, Config{TruncateAfter: 1}, Config{})
	if c := p.Next(); c.ResetAfter != 1 {
		t.Errorf("dial 1 config = %+v", c)
	}
	if c := p.Next(); c.TruncateAfter != 1 {
		t.Errorf("dial 2 config = %+v", c)
	}
	for i := 0; i < 3; i++ {
		if c := p.Next(); c.ResetAfter != 0 || c.TruncateAfter != 0 {
			t.Errorf("dial %d not clean: %+v", 3+i, c)
		}
	}
	if p.Dials() != 5 {
		t.Errorf("dials = %d, want 5", p.Dials())
	}
	if c := (&Plan{}).Next(); c.ResetAfter != 0 || c.Seed != 0 {
		t.Errorf("empty plan config = %+v", c)
	}
}
