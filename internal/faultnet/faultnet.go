// Package faultnet is a deterministic fault-injection layer for
// net.Conn. It wraps one end of a connection and perturbs the byte
// stream flowing *out* of that end: added latency, bandwidth caps,
// partial (chunked) writes, byte corruption, one-time stalls,
// mid-stream truncation, silent blackholing, and abrupt resets.
//
// All randomness is drawn from a single seeded source, so a given
// Config produces the same fault schedule on every run — chaos tests
// stay reproducible and bench numbers comparable.
//
// The wrapper is placed on the *producing* end of the traffic under
// test: to fault a server's responses toward a client, wrap the
// server-side conn end. Reads pass through untouched apart from
// ReadLatency, so the wrapped end still hears its peer.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Injected transport errors. Both model abrupt link failures and are
// classified as retryable by internal/http2.Retryable.
var (
	// ErrTruncated is returned once the TruncateAfter budget is
	// exhausted: the tail of the stream is cut and the transport
	// closed, so the peer sees EOF mid-frame.
	ErrTruncated = errors.New("faultnet: stream truncated mid-write")

	// ErrReset is returned once the ResetAfter budget is exhausted:
	// the transport dies abruptly, as on a TCP RST.
	ErrReset = errors.New("faultnet: connection reset by fault injection")

	// ErrReadBlackholed is returned from a blackholed read direction
	// once the connection is closed; until then the read simply hangs,
	// exactly like packets lost to an asymmetric partition.
	ErrReadBlackholed = errors.New("faultnet: read direction blackholed")
)

// Config selects the faults to inject. The zero value injects
// nothing. Byte thresholds count bytes written through the wrapped
// end; zero disables the corresponding fault.
type Config struct {
	// Seed drives all probabilistic faults (corruption position and
	// probability draws). The same seed gives the same schedule.
	Seed int64

	// ReadLatency / WriteLatency are added to every Read / Write.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// BandwidthBps, when positive, paces writes to roughly this many
	// bytes per second.
	BandwidthBps int

	// ChunkWrites, when positive, splits every Write into underlying
	// writes of at most this many bytes — the partial/short-write
	// fault, exercising frame reassembly on the peer.
	ChunkWrites int

	// CorruptProb is the per-chunk probability of flipping one byte
	// (position and bit chosen from the seeded source).
	CorruptProb float64

	// StallAfter / StallFor pause the writer once, the first time the
	// written-byte count crosses StallAfter.
	StallAfter int64
	StallFor   time.Duration

	// TruncateAfter cuts the stream after this many written bytes:
	// the remainder is dropped, the transport closed, ErrTruncated
	// returned.
	TruncateAfter int64

	// BlackholeAfter silently swallows everything written after this
	// many bytes: writes keep "succeeding" but nothing reaches the
	// peer — the classic dead-peer hang that keepalives must catch.
	BlackholeAfter int64

	// ReadBlackholeAfter blackholes the *read* direction after this
	// many bytes have been read: later reads block until the conn is
	// closed (then return ErrReadBlackholed), while writes keep
	// flowing. Combined with BlackholeAfter this models asymmetric
	// partitions — a node that can still be heard but no longer
	// hears, or vice versa — the split-brain ingredient the E23
	// cross-node chaos sweep injects.
	ReadBlackholeAfter int64

	// ResetAfter kills the transport abruptly after this many written
	// bytes, returning ErrReset without writing the current chunk.
	ResetAfter int64

	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// Stats counts what was actually injected on one conn.
type Stats struct {
	BytesRead      int64
	BytesWritten   int64 // bytes that genuinely reached the transport
	Corrupted      int   // chunks with a flipped byte
	Chunks         int   // underlying writes issued
	Stalled        bool
	Truncated      bool
	Blackholed     bool
	ReadBlackholed bool
	Reset          bool
}

// A Conn is a fault-injecting wrapper around an underlying net.Conn.
type Conn struct {
	nc  net.Conn
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	stats   Stats
	dead    error         // sticky terminal fault (truncation/reset)
	closed  chan struct{} // closed by Close; unblocks blackholed reads
	closeMu sync.Once
}

// Wrap decorates nc with the faults in cfg.
func Wrap(nc net.Conn, cfg Config) *Conn {
	return &Conn{
		nc:     nc,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		closed: make(chan struct{}),
	}
}

// Pipe returns an in-memory connection pair whose srv end injects the
// configured faults into its writes — the usual layout for testing a
// client against a misbehaving server.
func Pipe(cfg Config) (cli net.Conn, srv *Conn) {
	cEnd, sEnd := net.Pipe()
	return cEnd, Wrap(sEnd, cfg)
}

// Stats returns a snapshot of the injected-fault counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Conn) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf("faultnet: "+format, args...)
	}
}

// Read passes through, adding ReadLatency. Once ReadBlackholeAfter
// bytes have been read, further reads block until the conn closes —
// the inbound half of an asymmetric partition.
func (c *Conn) Read(p []byte) (int, error) {
	if c.cfg.ReadLatency > 0 {
		time.Sleep(c.cfg.ReadLatency)
	}
	if c.cfg.ReadBlackholeAfter > 0 {
		c.mu.Lock()
		if c.stats.BytesRead >= c.cfg.ReadBlackholeAfter {
			if !c.stats.ReadBlackholed {
				c.stats.ReadBlackholed = true
				c.mu.Unlock()
				c.logf("read blackhole after %d bytes", c.cfg.ReadBlackholeAfter)
			} else {
				c.mu.Unlock()
			}
			<-c.closed
			return 0, ErrReadBlackholed
		}
		// Cap the read at the threshold so it trips exactly even when
		// the peer hands over one large burst.
		if room := c.cfg.ReadBlackholeAfter - c.stats.BytesRead; int64(len(p)) > room {
			p = p[:room]
		}
		c.mu.Unlock()
	}
	n, err := c.nc.Read(p)
	c.mu.Lock()
	c.stats.BytesRead += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write applies the configured write-path faults in threshold order.
// It reports the full length on blackholed writes (the bytes
// "succeeded" from the writer's point of view) and a short count with
// a sticky error on truncation or reset.
func (c *Conn) Write(p []byte) (int, error) {
	if c.cfg.WriteLatency > 0 {
		time.Sleep(c.cfg.WriteLatency)
	}
	written := 0
	for written < len(p) {
		c.mu.Lock()
		if c.dead != nil {
			err := c.dead
			c.mu.Unlock()
			return written, err
		}
		// Abrupt reset: nothing past the threshold makes it out.
		if c.cfg.ResetAfter > 0 && c.written >= c.cfg.ResetAfter {
			c.dead = ErrReset
			c.stats.Reset = true
			c.mu.Unlock()
			c.logf("reset after %d bytes", c.cfg.ResetAfter)
			c.Close()
			return written, ErrReset
		}

		// Truncation: the budget was emitted by earlier (capped)
		// chunks; now cut the stream.
		if c.cfg.TruncateAfter > 0 && c.written >= c.cfg.TruncateAfter {
			c.dead = ErrTruncated
			c.stats.Truncated = true
			c.mu.Unlock()
			c.logf("truncated after %d bytes", c.cfg.TruncateAfter)
			c.Close()
			return written, ErrTruncated
		}

		// Blackhole: swallow silently, forever.
		if c.cfg.BlackholeAfter > 0 && c.written >= c.cfg.BlackholeAfter {
			if !c.stats.Blackholed {
				c.stats.Blackholed = true
				c.mu.Unlock()
				c.logf("blackhole after %d bytes", c.cfg.BlackholeAfter)
			} else {
				c.mu.Unlock()
			}
			return len(p), nil
		}

		// One-time stall at the threshold crossing.
		var stall time.Duration
		if c.cfg.StallAfter > 0 && !c.stats.Stalled && c.written >= c.cfg.StallAfter {
			c.stats.Stalled = true
			stall = c.cfg.StallFor
		}

		chunk := p[written:]
		if c.cfg.ChunkWrites > 0 && len(chunk) > c.cfg.ChunkWrites {
			chunk = chunk[:c.cfg.ChunkWrites]
		}
		// Cap the chunk at the nearest pending fault boundary so every
		// threshold trips exactly, even for a single large write.
		for _, boundary := range []int64{c.cfg.ResetAfter, c.cfg.TruncateAfter, c.cfg.BlackholeAfter, c.cfg.StallAfter} {
			if boundary > c.written {
				if room := boundary - c.written; int64(len(chunk)) > room {
					chunk = chunk[:room]
				}
			}
		}

		// Corruption: flip one byte in a copy of the chunk.
		out := chunk
		if c.cfg.CorruptProb > 0 && c.rng.Float64() < c.cfg.CorruptProb {
			buf := append([]byte(nil), chunk...)
			pos := c.rng.Intn(len(buf))
			buf[pos] ^= 1 << uint(c.rng.Intn(8))
			out = buf
			c.stats.Corrupted++
		}
		c.stats.Chunks++
		c.mu.Unlock()

		if stall > 0 {
			c.logf("stalling %v after %d bytes", c.cfg.StallFor, c.cfg.StallAfter)
			time.Sleep(stall)
		}
		if c.cfg.BandwidthBps > 0 {
			time.Sleep(time.Duration(float64(len(out)) / float64(c.cfg.BandwidthBps) * float64(time.Second)))
		}
		n, err := c.nc.Write(out)
		c.mu.Lock()
		c.written += int64(n)
		c.stats.BytesWritten += int64(n)
		c.mu.Unlock()
		written += n
		if err != nil {
			return written, fmt.Errorf("faultnet: underlying write: %w", err)
		}
	}
	return written, nil
}

// Close closes the underlying conn and releases any reads parked in
// a blackholed read direction.
func (c *Conn) Close() error {
	c.closeMu.Do(func() { close(c.closed) })
	return c.nc.Close()
}

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// SetDeadline passes through.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// SetReadDeadline passes through.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// SetWriteDeadline passes through.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// blackholeAddr is the fake address of a fully blackholed conn.
type blackholeAddr struct{}

func (blackholeAddr) Network() string { return "blackhole" }
func (blackholeAddr) String() string  { return "blackhole" }

// A blackholeConn is unreachable from byte zero: writes "succeed"
// into the void and reads hang until Close.
type blackholeConn struct {
	closed chan struct{}
	once   sync.Once
}

func (b *blackholeConn) Read(p []byte) (int, error) {
	<-b.closed
	return 0, ErrReadBlackholed
}

func (b *blackholeConn) Write(p []byte) (int, error) {
	select {
	case <-b.closed:
		return 0, net.ErrClosed
	default:
		return len(p), nil
	}
}

func (b *blackholeConn) Close() error {
	b.once.Do(func() { close(b.closed) })
	return nil
}

func (b *blackholeConn) LocalAddr() net.Addr              { return blackholeAddr{} }
func (b *blackholeConn) RemoteAddr() net.Addr             { return blackholeAddr{} }
func (b *blackholeConn) SetDeadline(time.Time) error      { return nil }
func (b *blackholeConn) SetReadDeadline(time.Time) error  { return nil }
func (b *blackholeConn) SetWriteDeadline(time.Time) error { return nil }

// Blackhole returns a connection to nowhere: every write is silently
// swallowed and every read hangs until Close. It models dialing a
// peer the network has completely swallowed — the dial "succeeds"
// (SYN-ACKs still flow in many real partitions) but nothing ever
// comes back, so only attempt timeouts can unstick the caller.
func Blackhole() net.Conn {
	return &blackholeConn{closed: make(chan struct{})}
}

// A Plan sequences fault configs across successive connections: the
// n-th dial gets the n-th config, and dials past the end get the
// last entry (use a zero Config there for "healthy from now on").
// A Plan is safe for concurrent use.
type Plan struct {
	mu      sync.Mutex
	configs []Config
	handed  int
}

// NewPlan builds a plan from the given per-connection configs.
func NewPlan(configs ...Config) *Plan { return &Plan{configs: configs} }

// Next returns the config for the next connection.
func (p *Plan) Next() Config {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := p.handed
	p.handed++
	if len(p.configs) == 0 {
		return Config{}
	}
	if idx >= len(p.configs) {
		idx = len(p.configs) - 1
	}
	return p.configs[idx]
}

// Dials reports how many connections have drawn a config so far.
func (p *Plan) Dials() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.handed
}
