package faultnet

// Crash models a process death and restart at the dial layer: every
// connection established through a crashed peer's dial dies at once
// (the kernel resets a dead process's sockets — nothing lingers), and
// new dials fail outright until Restart. Unlike a blackhole, which
// models a network that silently eats packets, a crash is *loud*: the
// peer's transport errors immediately, which is exactly what breaker
// and membership ladders key on. In-process chaos tests use it to
// rehearse the kill→restart sequence the edge tier's warm-restart
// path exists for, without forking real processes.

import (
	"errors"
	"net"
	"sync"
)

// ErrCrashed is returned from dials attempted while the peer is down.
var ErrCrashed = errors.New("faultnet: peer crashed")

// A Crash is a kill switch over one peer's dial func. The zero value
// is a running (not crashed) peer.
type Crash struct {
	mu    sync.Mutex
	down  bool
	conns map[*crashConn]struct{}
	kills int
}

// Wrap returns a dial that tracks every connection it establishes so
// Kill can sever them all, and that fails with ErrCrashed while the
// peer is down.
func (c *Crash) Wrap(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c.mu.Lock()
		if c.down {
			c.mu.Unlock()
			return nil, ErrCrashed
		}
		c.mu.Unlock()
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		cc := &crashConn{Conn: conn, owner: c}
		c.mu.Lock()
		// A Kill may have landed between the check and the dial
		// completing; the late connection dies with the rest.
		if c.down {
			c.mu.Unlock()
			conn.Close()
			return nil, ErrCrashed
		}
		if c.conns == nil {
			c.conns = map[*crashConn]struct{}{}
		}
		c.conns[cc] = struct{}{}
		c.mu.Unlock()
		return cc, nil
	}
}

// Kill crashes the peer: all live connections are severed and future
// dials fail until Restart. Idempotent.
func (c *Crash) Kill() {
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return
	}
	c.down = true
	c.kills++
	conns := make([]*crashConn, 0, len(c.conns))
	for cc := range c.conns {
		conns = append(conns, cc)
	}
	c.conns = nil
	c.mu.Unlock()
	for _, cc := range conns {
		cc.Conn.Close()
	}
}

// Restart brings the peer back: dials succeed again. Connections
// severed by the kill stay dead — survivors must redial, as after a
// real restart.
func (c *Crash) Restart() {
	c.mu.Lock()
	c.down = false
	c.mu.Unlock()
}

// Down reports whether the peer is currently crashed.
func (c *Crash) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// Kills returns how many times the peer has been killed.
func (c *Crash) Kills() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kills
}

// crashConn untracks itself on close so the Crash's conn table does
// not grow with every dial over a long test.
type crashConn struct {
	net.Conn
	owner *Crash
	once  sync.Once
}

func (cc *crashConn) Close() error {
	cc.once.Do(func() {
		cc.owner.mu.Lock()
		delete(cc.owner.conns, cc)
		cc.owner.mu.Unlock()
	})
	return cc.Conn.Close()
}
