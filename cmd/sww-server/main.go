// Command sww-server runs the §5.1 generative server: an HTTP/2
// server that advertises SETTINGS_GEN_ABILITY, serves the built-in
// demo site in prompt form to generative clients, and falls back to
// traditional content (stored originals or server-side generation)
// for everyone else.
//
// Usage:
//
//	sww-server [-addr :8420] [-image-model sd3-medium]
//	           [-text-model deepseek-r1-8b] [-policy generative|traditional]
//	           [-max-gen-workers 4] [-gen-queue-deadline 500ms]
//	           [-admit-rps 0] [-admit-burst 0]
//	           [-breaker-failures 5] [-breaker-cooldown 1s] [-breaker-probes 1]
//	           [-gen-cache-bytes 67108864] [-retry-after 1s]
//	           [-artifact-cache-bytes 67108864] [-gen-parallel 0]
//	           [-abuse-off] [-abuse-window 10s] [-abuse-rst-budget 100]
//	           [-abuse-ping-budget 100] [-abuse-settings-budget 20]
//	           [-abuse-window-update-budget 4000] [-abuse-empty-data-budget 100]
//	           [-ops-addr 127.0.0.1:8421]
//
// -ops-addr starts an operations listener (off by default): Prometheus
// metrics at /metrics, a JSON snapshot at /statusz, recent request
// traces at /tracez, and net/http/pprof under /debug/pprof/. Keep it
// on a loopback or otherwise private address — it is unauthenticated.
//
// The overload flags shape the server-side load-shed ladder: a
// bounded generation worker pool with a queue deadline, token-bucket
// admission (off when -admit-rps is 0), a circuit breaker over the
// generation backend, a byte-capped cache of generated traditional
// content, and the Retry-After advice attached to 503 replies.
//
// The abuse flags set the per-connection abuse-ledger budgets
// (events per sliding window). Exceeding a budget first ignores the
// flooding frame kind, then refuses new streams with
// ENHANCE_YOUR_CALM, then kills the connection with GOAWAY.
//
// The demo site contains /wiki/landscape (Figure 2), /news/article
// (§6.2 text experiment) and /blog/hike (§2.1 travel blog).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"sww/internal/core"
	"sww/internal/genai/imagegen"
	"sww/internal/genai/textgen"
	"sww/internal/http2"
	"sww/internal/overload"
	"sww/internal/telemetry"
	"sww/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8420", "listen address")
	imageModel := flag.String("image-model", imagegen.SD3Medium, "server-side image model")
	textModel := flag.String("text-model", textgen.DeepSeek8, "server-side text model")
	policy := flag.String("policy", "generative", "serve policy: generative|traditional")
	useH3 := flag.Bool("h3", false, "serve the HTTP/3 mapping instead of HTTP/2")
	maxGenWorkers := flag.Int("max-gen-workers", 4, "concurrent server-side generations")
	queueDeadline := flag.Duration("gen-queue-deadline", 500*time.Millisecond, "max wait for a free generation worker")
	admitRPS := flag.Float64("admit-rps", 0, "sustained generation admission rate (0 disables)")
	admitBurst := flag.Int("admit-burst", 0, "admission token-bucket depth (0 = 2x workers)")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive generation failures that open the breaker (<0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before half-open probes")
	breakerProbes := flag.Int("breaker-probes", 1, "concurrent half-open probes")
	genCacheBytes := flag.Int64("gen-cache-bytes", 64<<20, "byte cap on cached generated traditional content")
	artifactCacheBytes := flag.Int64("artifact-cache-bytes", 64<<20, "byte cap on the content-addressed artifact cache (0 disables)")
	genParallel := flag.Int("gen-parallel", 0, "per-page placeholder synthesis workers (0 = device default)")
	retryAfter := flag.Duration("retry-after", time.Second, "default Retry-After advice on 503 replies")
	abuseOff := flag.Bool("abuse-off", false, "disable the per-connection abuse ledger")
	abuseWindow := flag.Duration("abuse-window", 10*time.Second, "abuse-budget sliding window")
	abuseRSTBudget := flag.Int("abuse-rst-budget", 100, "rapid resets tolerated per window")
	abusePingBudget := flag.Int("abuse-ping-budget", 100, "non-ACK PINGs tolerated per window")
	abuseSettingsBudget := flag.Int("abuse-settings-budget", 20, "SETTINGS frames tolerated per window")
	abuseWUBudget := flag.Int("abuse-window-update-budget", 4000, "WINDOW_UPDATEs tolerated per window")
	abuseEmptyDataBudget := flag.Int("abuse-empty-data-budget", 100, "empty DATA frames tolerated per window")
	opsAddr := flag.String("ops-addr", "", "operations listener address for /metrics, /statusz, /tracez, /debug/pprof (empty disables)")
	flag.Parse()

	srv, err := core.NewServer(*imageModel, *textModel)
	if err != nil {
		log.Fatalf("building server: %v", err)
	}
	srv.SetOverload(overload.Config{
		MaxGenWorkers: *maxGenWorkers,
		QueueDeadline: *queueDeadline,
		AdmitRPS:      *admitRPS,
		AdmitBurst:    *admitBurst,
		Breaker: overload.BreakerConfig{
			FailureThreshold: *breakerFailures,
			Cooldown:         *breakerCooldown,
			ProbeBudget:      *breakerProbes,
		},
		CacheBytes: *genCacheBytes,
		RetryAfter: *retryAfter,
	})
	srv.SetArtifactCacheBytes(*artifactCacheBytes)
	srv.SetGenWorkers(*genParallel)
	srv.SetAbusePolicy(&http2.AbusePolicy{
		Disabled:           *abuseOff,
		Window:             *abuseWindow,
		RapidResetBudget:   *abuseRSTBudget,
		PingBudget:         *abusePingBudget,
		SettingsBudget:     *abuseSettingsBudget,
		WindowUpdateBudget: *abuseWUBudget,
		EmptyDataBudget:    *abuseEmptyDataBudget,
	})
	switch *policy {
	case "generative":
		srv.Policy = core.PolicyGenerative
	case "traditional":
		srv.Policy = core.PolicyTraditional
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	pages := []*core.Page{
		workload.WikimediaLandscape(),
		workload.NewsArticle(),
		workload.TravelBlog(),
	}
	for _, p := range pages {
		srv.AddPage(p)
		fmt.Printf("serving %s (%d placeholders, media ratio %.1fx)\n",
			p.Path, len(p.Placeholders()), p.MediaCompressionRatio())
	}
	// Telemetry attaches after the overload/cache flags above so the
	// adopted counters are the ones actually serving.
	if *opsAddr != "" {
		set := telemetry.NewSet()
		srv.EnableTelemetry(set)
		ol, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			log.Fatalf("ops listen: %v", err)
		}
		go func() { log.Fatalf("ops listener: %v", set.Serve(ol)) }()
		fmt.Printf("ops: metrics/statusz/tracez/pprof on http://%s\n", ol.Addr())
	}

	sww, trad := srv.StorageBytes()
	fmt.Printf("storage: %d B as SWW vs %d B traditional (%.1fx)\n",
		sww, trad, float64(trad)/float64(sww))
	fmt.Printf("overload: %d gen workers, queue deadline %v, admit %.0f rps, gen cache %d B\n",
		*maxGenWorkers, *queueDeadline, *admitRPS, *genCacheBytes)
	fmt.Printf("fast path: artifact cache %d B, gen parallelism %d (0 = device default)\n",
		*artifactCacheBytes, *genParallel)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	proto := "h2c"
	if *useH3 {
		proto = "h3 (QUIC-shaped over TCP)"
	}
	fmt.Printf("sww-server listening on %s (%s, policy=%s)\n", l.Addr(), proto, *policy)
	if *useH3 {
		h3 := srv.H3Server()
		for {
			nc, err := l.Accept()
			if err != nil {
				log.Fatal(err)
			}
			go h3.ServeConn(nc)
		}
	}
	log.Fatal(srv.Serve(l))
}
