// Command sww-server runs the §5.1 generative server: an HTTP/2
// server that advertises SETTINGS_GEN_ABILITY, serves the built-in
// demo site in prompt form to generative clients, and falls back to
// traditional content (stored originals or server-side generation)
// for everyone else.
//
// Usage:
//
//	sww-server [-role origin|edge] [-addr :8420] [-image-model sd3-medium]
//	           [-text-model deepseek-r1-8b] [-policy generative|traditional]
//	           [-max-gen-workers 4] [-gen-queue-deadline 500ms]
//	           [-admit-rps 0] [-admit-burst 0]
//	           [-breaker-failures 5] [-breaker-cooldown 1s] [-breaker-probes 1]
//	           [-gen-cache-bytes 67108864] [-retry-after 1s]
//	           [-artifact-cache-bytes 67108864] [-gen-parallel 0]
//	           [-abuse-off] [-abuse-window 10s] [-abuse-rst-budget 100]
//	           [-abuse-ping-budget 100] [-abuse-settings-budget 20]
//	           [-abuse-window-update-budget 4000] [-abuse-empty-data-budget 100]
//	           [-ops-addr 127.0.0.1:8421]
//	           [-inval-log 1024]
//	sww-server -role edge -origin-addr localhost:8420
//	           [-addr :8430] [-edge-name edge1] [-peers edge1,edge2]
//	           [-edge-cache-bytes 8388608] [-edge-ttl 30s]
//	           [-edge-max-stale 10m] [-edge-poll 250ms]
//	           [-origin-attempts 3] [-origin-attempt-timeout 2s]
//	           [-origin-breaker-failures 3] [-origin-probe-cooldown 500ms]
//	           [-ops-addr 127.0.0.1:8431]
//
// -role origin (the default) runs the generative server with the CDN
// control surface attached: the /sww-cdn/ invalidation feed that edge
// replicas poll, fed by unpublishes and cache evictions. -role edge
// runs an edge replica instead: it terminates SWW HTTP/2 from
// terminal clients, serves from a local cache shard, pulls misses
// from -origin-addr, and keeps serving warm entries (age-stamped
// stale) when the origin is unreachable. -peers names the whole edge
// fleet so the edge can recognise ring-failover traffic.
//
// -ops-addr starts an operations listener (off by default): Prometheus
// metrics at /metrics, a JSON snapshot at /statusz, recent request
// traces at /tracez, and net/http/pprof under /debug/pprof/. Keep it
// on a loopback or otherwise private address — it is unauthenticated.
//
// The overload flags shape the server-side load-shed ladder: a
// bounded generation worker pool with a queue deadline, token-bucket
// admission (off when -admit-rps is 0), a circuit breaker over the
// generation backend, a byte-capped cache of generated traditional
// content, and the Retry-After advice attached to 503 replies.
//
// The abuse flags set the per-connection abuse-ledger budgets
// (events per sliding window). Exceeding a budget first ignores the
// flooding frame kind, then refuses new streams with
// ENHANCE_YOUR_CALM, then kills the connection with GOAWAY.
//
// The demo site contains /wiki/landscape (Figure 2), /news/article
// (§6.2 text experiment) and /blog/hike (§2.1 travel blog).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"sww/internal/cdn"
	"sww/internal/core"
	"sww/internal/genai/imagegen"
	"sww/internal/genai/textgen"
	"sww/internal/http2"
	"sww/internal/overload"
	"sww/internal/telemetry"
	"sww/internal/workload"
)

func main() {
	role := flag.String("role", "origin", "process role: origin|edge")
	addr := flag.String("addr", ":8420", "listen address")
	imageModel := flag.String("image-model", imagegen.SD3Medium, "server-side image model")
	textModel := flag.String("text-model", textgen.DeepSeek8, "server-side text model")
	policy := flag.String("policy", "generative", "serve policy: generative|traditional")
	useH3 := flag.Bool("h3", false, "serve the HTTP/3 mapping instead of HTTP/2")
	maxGenWorkers := flag.Int("max-gen-workers", 4, "concurrent server-side generations")
	queueDeadline := flag.Duration("gen-queue-deadline", 500*time.Millisecond, "max wait for a free generation worker")
	admitRPS := flag.Float64("admit-rps", 0, "sustained generation admission rate (0 disables)")
	admitBurst := flag.Int("admit-burst", 0, "admission token-bucket depth (0 = 2x workers)")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive generation failures that open the breaker (<0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before half-open probes")
	breakerProbes := flag.Int("breaker-probes", 1, "concurrent half-open probes")
	genCacheBytes := flag.Int64("gen-cache-bytes", 64<<20, "byte cap on cached generated traditional content")
	artifactCacheBytes := flag.Int64("artifact-cache-bytes", 64<<20, "byte cap on the content-addressed artifact cache (0 disables)")
	genParallel := flag.Int("gen-parallel", 0, "per-page placeholder synthesis workers (0 = device default)")
	retryAfter := flag.Duration("retry-after", time.Second, "default Retry-After advice on 503 replies")
	abuseOff := flag.Bool("abuse-off", false, "disable the per-connection abuse ledger")
	abuseWindow := flag.Duration("abuse-window", 10*time.Second, "abuse-budget sliding window")
	abuseRSTBudget := flag.Int("abuse-rst-budget", 100, "rapid resets tolerated per window")
	abusePingBudget := flag.Int("abuse-ping-budget", 100, "non-ACK PINGs tolerated per window")
	abuseSettingsBudget := flag.Int("abuse-settings-budget", 20, "SETTINGS frames tolerated per window")
	abuseWUBudget := flag.Int("abuse-window-update-budget", 4000, "WINDOW_UPDATEs tolerated per window")
	abuseEmptyDataBudget := flag.Int("abuse-empty-data-budget", 100, "empty DATA frames tolerated per window")
	opsAddr := flag.String("ops-addr", "", "operations listener address for /metrics, /statusz, /tracez, /debug/pprof (empty disables)")
	invalLog := flag.Int("inval-log", cdn.DefaultInvalidationLog, "origin invalidation log depth")
	originAddr := flag.String("origin-addr", "", "edge role: origin address to pull misses from")
	edgeName := flag.String("edge-name", "edge1", "edge role: this edge's ring name")
	peerNames := flag.String("peers", "", "edge role: comma-separated fleet names for the placement ring")
	edgeCacheBytes := flag.Int64("edge-cache-bytes", 8<<20, "edge role: byte cap on the local cache shard")
	edgeTTL := flag.Duration("edge-ttl", 30*time.Second, "edge role: cached entry freshness")
	edgeMaxStale := flag.Duration("edge-max-stale", 10*time.Minute, "edge role: how far past TTL an entry may be served when the origin is down")
	edgePoll := flag.Duration("edge-poll", 250*time.Millisecond, "edge role: invalidation poll interval")
	originAttempts := flag.Int("origin-attempts", 3, "edge role: upstream attempts per pull")
	originAttemptTimeout := flag.Duration("origin-attempt-timeout", 2*time.Second, "edge role: per-attempt upstream timeout")
	originBreakerFailures := flag.Int("origin-breaker-failures", 3, "edge role: consecutive upstream failures that open the origin breaker")
	originProbeCooldown := flag.Duration("origin-probe-cooldown", 500*time.Millisecond, "edge role: open-breaker cooldown before a probe")
	flag.Parse()

	if *role == "edge" {
		runEdge(edgeOpts{
			addr:            *addr,
			originAddr:      *originAddr,
			name:            *edgeName,
			peers:           *peerNames,
			cacheBytes:      *edgeCacheBytes,
			ttl:             *edgeTTL,
			maxStale:        *edgeMaxStale,
			poll:            *edgePoll,
			attempts:        *originAttempts,
			attemptTimeout:  *originAttemptTimeout,
			breakerFailures: *originBreakerFailures,
			probeCooldown:   *originProbeCooldown,
			opsAddr:         *opsAddr,
		})
		return
	}
	if *role != "origin" {
		log.Fatalf("unknown role %q (want origin|edge)", *role)
	}

	srv, err := core.NewServer(*imageModel, *textModel)
	if err != nil {
		log.Fatalf("building server: %v", err)
	}
	srv.SetOverload(overload.Config{
		MaxGenWorkers: *maxGenWorkers,
		QueueDeadline: *queueDeadline,
		AdmitRPS:      *admitRPS,
		AdmitBurst:    *admitBurst,
		Breaker: overload.BreakerConfig{
			FailureThreshold: *breakerFailures,
			Cooldown:         *breakerCooldown,
			ProbeBudget:      *breakerProbes,
		},
		CacheBytes: *genCacheBytes,
		RetryAfter: *retryAfter,
	})
	srv.SetArtifactCacheBytes(*artifactCacheBytes)
	srv.SetGenWorkers(*genParallel)
	srv.SetAbusePolicy(&http2.AbusePolicy{
		Disabled:           *abuseOff,
		Window:             *abuseWindow,
		RapidResetBudget:   *abuseRSTBudget,
		PingBudget:         *abusePingBudget,
		SettingsBudget:     *abuseSettingsBudget,
		WindowUpdateBudget: *abuseWUBudget,
		EmptyDataBudget:    *abuseEmptyDataBudget,
	})
	switch *policy {
	case "generative":
		srv.Policy = core.PolicyGenerative
	case "traditional":
		srv.Policy = core.PolicyTraditional
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	pages := []*core.Page{
		workload.WikimediaLandscape(),
		workload.NewsArticle(),
		workload.TravelBlog(),
	}
	for _, p := range pages {
		srv.AddPage(p)
		fmt.Printf("serving %s (%d placeholders, media ratio %.1fx)\n",
			p.Path, len(p.Placeholders()), p.MediaCompressionRatio())
	}
	// The CDN control surface: edge replicas poll /sww-cdn/ for the
	// sequenced invalidation feed, fed by unpublishes and evictions.
	origin := cdn.NewOrigin(srv, *invalLog)
	fmt.Printf("cdn: invalidation feed on %s (log depth %d)\n", cdn.ControlPrefix, *invalLog)

	// Telemetry attaches after the overload/cache flags above so the
	// adopted counters are the ones actually serving.
	if *opsAddr != "" {
		set := telemetry.NewSet()
		srv.EnableTelemetry(set)
		origin.Register(set.Registry)
		ol, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			log.Fatalf("ops listen: %v", err)
		}
		go func() { log.Fatalf("ops listener: %v", set.Serve(ol)) }()
		fmt.Printf("ops: metrics/statusz/tracez/pprof on http://%s\n", ol.Addr())
	}

	sww, trad := srv.StorageBytes()
	fmt.Printf("storage: %d B as SWW vs %d B traditional (%.1fx)\n",
		sww, trad, float64(trad)/float64(sww))
	fmt.Printf("overload: %d gen workers, queue deadline %v, admit %.0f rps, gen cache %d B\n",
		*maxGenWorkers, *queueDeadline, *admitRPS, *genCacheBytes)
	fmt.Printf("fast path: artifact cache %d B, gen parallelism %d (0 = device default)\n",
		*artifactCacheBytes, *genParallel)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	proto := "h2c"
	if *useH3 {
		proto = "h3 (QUIC-shaped over TCP)"
	}
	fmt.Printf("sww-server listening on %s (%s, policy=%s)\n", l.Addr(), proto, *policy)
	if *useH3 {
		h3 := srv.H3Server()
		for {
			nc, err := l.Accept()
			if err != nil {
				log.Fatal(err)
			}
			go h3.ServeConn(nc)
		}
	}
	log.Fatal(srv.Serve(l))
}

type edgeOpts struct {
	addr, originAddr, name, peers string
	cacheBytes                    int64
	ttl, maxStale, poll           time.Duration
	attempts                      int
	attemptTimeout                time.Duration
	breakerFailures               int
	probeCooldown                 time.Duration
	opsAddr                       string
}

// runEdge runs one edge replica: a local cache shard in front of the
// origin, serving terminal clients and polling the invalidation feed.
func runEdge(o edgeOpts) {
	if o.originAddr == "" {
		log.Fatal("-role edge requires -origin-addr")
	}
	peers := []string{o.name}
	if o.peers != "" {
		peers = strings.Split(o.peers, ",")
	}
	origins := core.NewEndpointSet(core.EndpointHealthConfig{
		FailureThreshold: o.breakerFailures,
		ProbeCooldown:    o.probeCooldown,
	})
	origins.Add("origin", func() (net.Conn, error) {
		return net.DialTimeout("tcp", o.originAddr, 5*time.Second)
	})
	e := cdn.NewEdge(cdn.EdgeConfig{
		Name:         o.name,
		CacheBytes:   o.cacheBytes,
		TTL:          o.ttl,
		MaxStale:     o.maxStale,
		PollInterval: o.poll,
		Retry: core.RetryPolicy{
			MaxAttempts:    o.attempts,
			AttemptTimeout: o.attemptTimeout,
		},
		Peers: peers,
	}, origins)
	if o.opsAddr != "" {
		set := telemetry.NewSet()
		e.Register(set.Registry)
		ol, err := net.Listen("tcp", o.opsAddr)
		if err != nil {
			log.Fatalf("ops listen: %v", err)
		}
		go func() { log.Fatalf("ops listener: %v", set.Serve(ol)) }()
		fmt.Printf("ops: metrics/statusz/tracez/pprof on http://%s\n", ol.Addr())
	}
	e.Start()
	defer e.Close()

	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("sww-edge %q listening on %s, origin %s, fleet %v\n",
		o.name, l.Addr(), o.originAddr, peers)
	fmt.Printf("edge: cache %d B, ttl %v, max-stale %v, poll %v\n",
		o.cacheBytes, o.ttl, o.maxStale, o.poll)
	for {
		nc, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		e.StartConn(nc)
	}
}
