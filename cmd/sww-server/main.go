// Command sww-server runs the §5.1 generative server: an HTTP/2
// server that advertises SETTINGS_GEN_ABILITY, serves the built-in
// demo site in prompt form to generative clients, and falls back to
// traditional content (stored originals or server-side generation)
// for everyone else.
//
// Usage:
//
//	sww-server [-role origin|standby|edge] [-addr :8420] [-image-model sd3-medium]
//	           [-text-model deepseek-r1-8b] [-policy generative|traditional]
//	           [-max-gen-workers 4] [-gen-queue-deadline 500ms]
//	           [-admit-rps 0] [-admit-burst 0]
//	           [-breaker-failures 5] [-breaker-cooldown 1s] [-breaker-probes 1]
//	           [-gen-cache-bytes 67108864] [-retry-after 1s]
//	           [-artifact-cache-bytes 67108864] [-gen-parallel 0]
//	           [-abuse-off] [-abuse-window 10s] [-abuse-rst-budget 100]
//	           [-abuse-ping-budget 100] [-abuse-settings-budget 20]
//	           [-abuse-window-update-budget 4000] [-abuse-empty-data-budget 100]
//	           [-ops-addr 127.0.0.1:8421]
//	           [-inval-log 1024] [-drain-timeout 5s]
//	           [-origin-log /var/lib/sww/origin] [-origin-epoch-dir /var/lib/sww/origin]
//	sww-server -role standby -origin-addr localhost:8420
//	           [-addr :8425] [-origin-log /var/lib/sww/standby]
//	           [-standby-advertise 127.0.0.1:8425]
//	           [-standby-poll 250ms] [-promote-after 2s]
//	sww-server -role edge -origin-addr localhost:8420,localhost:8425
//	           [-addr :8430] [-edge-name edge1]
//	           [-peers edge1=127.0.0.1:8430,edge2=127.0.0.1:8440]
//	           [-edge-advertise 127.0.0.1:8430]
//	           [-edge-cache-bytes 8388608] [-edge-ttl 30s]
//	           [-edge-max-stale 10m] [-edge-poll 250ms]
//	           [-edge-heartbeat 500ms] [-edge-suspect-after 1.5s]
//	           [-edge-dead-after 3s] [-edge-peer-fill 2]
//	           [-edge-snapshot /var/lib/sww/edge1.snap]
//	           [-edge-snapshot-interval 5s]
//	           [-origin-attempts 3] [-origin-attempt-timeout 2s]
//	           [-origin-breaker-failures 3] [-origin-probe-cooldown 500ms]
//	           [-retry-budget 0.2]
//	           [-ops-addr 127.0.0.1:8431] [-drain-timeout 5s]
//
// -role origin (the default) runs the generative server with the CDN
// control surface attached: the /sww-cdn/ invalidation feed that edge
// replicas poll, fed by unpublishes and cache evictions, plus push
// fan-out to any edge that advertises a push address. -origin-log
// makes the invalidation log durable (fsynced WAL plus snapshot
// compaction in that directory), so a restarted origin resumes its
// sequence numbers and edges reconcile incrementally instead of
// flushing. -origin-epoch-dir persists the fencing epoch (defaults to
// the -origin-log directory).
//
// -role standby runs a warm-standby origin: it mirrors the primary at
// -origin-addr over the same push/poll feed the edges use, and after
// -promote-after of primary silence promotes itself — bumping and
// persisting the fencing epoch so a returning old primary is refused
// (409) rather than splitting the sequence space. List the standby in
// every edge's -origin-addr so edges fail over to it.
//
// -role edge runs an edge replica instead: it terminates SWW HTTP/2
// from terminal clients, serves from a local cache shard, pulls misses
// from -origin-addr (a comma-separated list: first the primary, then
// failover origins such as the standby), and keeps serving warm
// entries (age-stamped stale) when every origin is unreachable.
// -retry-budget caps the edge's upstream retries at that fraction of
// recent request volume (a token bucket shared by origin pulls and
// peer fills), so a fleet of edges cannot amplify an origin outage
// into a retry storm; negative disables the budget.
//
// -peers names the edge fleet, either as bare names (placement ring
// only, the pre-mesh behaviour) or as name=addr pairs, which
// additionally join the self-healing mesh: the edge heartbeats every
// addressable peer, walks silent ones alive→suspect→dead, removes
// dead peers from the placement ring (re-admitting them on recovery),
// and consults alive ring-successors for peer-fill when the origin's
// breaker is open. -edge-advertise subscribes the edge to origin push
// invalidation. -edge-snapshot enables crash-safe warm restart: the
// shard and invalidation position are snapshotted there periodically
// and on shutdown, and reloaded on boot.
//
// Both roles drain gracefully on SIGTERM/SIGINT: the listener closes,
// in-flight streams get -drain-timeout to finish (GOAWAY first, so
// clients stop sending new streams), and an edge flushes its
// persistence snapshot before exiting.
//
// -ops-addr starts an operations listener (off by default): Prometheus
// metrics at /metrics, a JSON snapshot at /statusz, recent request
// traces at /tracez, and net/http/pprof under /debug/pprof/. Keep it
// on a loopback or otherwise private address — it is unauthenticated.
//
// The overload flags shape the server-side load-shed ladder: a
// bounded generation worker pool with a queue deadline, token-bucket
// admission (off when -admit-rps is 0), a circuit breaker over the
// generation backend, a byte-capped cache of generated traditional
// content, and the Retry-After advice attached to 503 replies.
//
// The abuse flags set the per-connection abuse-ledger budgets
// (events per sliding window). Exceeding a budget first ignores the
// flooding frame kind, then refuses new streams with
// ENHANCE_YOUR_CALM, then kills the connection with GOAWAY.
//
// The demo site contains /wiki/landscape (Figure 2), /news/article
// (§6.2 text experiment) and /blog/hike (§2.1 travel blog).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"sww/internal/cdn"
	"sww/internal/core"
	"sww/internal/genai/imagegen"
	"sww/internal/genai/textgen"
	"sww/internal/http2"
	"sww/internal/overload"
	"sww/internal/telemetry"
	"sww/internal/workload"
)

func main() {
	role := flag.String("role", "origin", "process role: origin|edge")
	addr := flag.String("addr", ":8420", "listen address")
	imageModel := flag.String("image-model", imagegen.SD3Medium, "server-side image model")
	textModel := flag.String("text-model", textgen.DeepSeek8, "server-side text model")
	policy := flag.String("policy", "generative", "serve policy: generative|traditional")
	useH3 := flag.Bool("h3", false, "serve the HTTP/3 mapping instead of HTTP/2")
	maxGenWorkers := flag.Int("max-gen-workers", 4, "concurrent server-side generations")
	queueDeadline := flag.Duration("gen-queue-deadline", 500*time.Millisecond, "max wait for a free generation worker")
	admitRPS := flag.Float64("admit-rps", 0, "sustained generation admission rate (0 disables)")
	admitBurst := flag.Int("admit-burst", 0, "admission token-bucket depth (0 = 2x workers)")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive generation failures that open the breaker (<0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before half-open probes")
	breakerProbes := flag.Int("breaker-probes", 1, "concurrent half-open probes")
	genCacheBytes := flag.Int64("gen-cache-bytes", 64<<20, "byte cap on cached generated traditional content")
	artifactCacheBytes := flag.Int64("artifact-cache-bytes", 64<<20, "byte cap on the content-addressed artifact cache (0 disables)")
	genParallel := flag.Int("gen-parallel", 0, "per-page placeholder synthesis workers (0 = device default)")
	retryAfter := flag.Duration("retry-after", time.Second, "default Retry-After advice on 503 replies")
	abuseOff := flag.Bool("abuse-off", false, "disable the per-connection abuse ledger")
	abuseWindow := flag.Duration("abuse-window", 10*time.Second, "abuse-budget sliding window")
	abuseRSTBudget := flag.Int("abuse-rst-budget", 100, "rapid resets tolerated per window")
	abusePingBudget := flag.Int("abuse-ping-budget", 100, "non-ACK PINGs tolerated per window")
	abuseSettingsBudget := flag.Int("abuse-settings-budget", 20, "SETTINGS frames tolerated per window")
	abuseWUBudget := flag.Int("abuse-window-update-budget", 4000, "WINDOW_UPDATEs tolerated per window")
	abuseEmptyDataBudget := flag.Int("abuse-empty-data-budget", 100, "empty DATA frames tolerated per window")
	opsAddr := flag.String("ops-addr", "", "operations listener address for /metrics, /statusz, /tracez, /debug/pprof (empty disables)")
	mutexProfileFraction := flag.Int("mutex-profile-fraction", 0, "runtime mutex-contention sampling: 1/n events recorded for /debug/pprof/mutex (0 disables)")
	blockProfileRate := flag.Int("block-profile-rate", 0, "runtime blocking-event sampling: one event per n ns blocked for /debug/pprof/block (0 disables)")
	invalLog := flag.Int("inval-log", cdn.DefaultInvalidationLog, "origin invalidation log depth")
	originLogDir := flag.String("origin-log", "", "origin/standby role: directory for the durable invalidation log (fsynced WAL + snapshot; empty = in-memory only)")
	originEpochDir := flag.String("origin-epoch-dir", "", "origin/standby role: directory persisting the fencing epoch (empty = the -origin-log directory)")
	standbyAdvertise := flag.String("standby-advertise", "", "standby role: address the primary pushes feeds to (empty = poll only)")
	standbyPoll := flag.Duration("standby-poll", 250*time.Millisecond, "standby role: mirror poll interval")
	promoteAfter := flag.Duration("promote-after", 2*time.Second, "standby role: primary silence before self-promotion")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "grace for in-flight streams on SIGTERM/SIGINT")
	originAddr := flag.String("origin-addr", "", "edge role: comma-separated origin addresses to pull misses from (primary first); standby role: the primary to mirror")
	retryBudget := flag.Float64("retry-budget", 0.2, "edge role: retry deposit per upstream request (token-bucket storm guard; 0 = default, negative disables)")
	edgeName := flag.String("edge-name", "edge1", "edge role: this edge's ring name")
	peerNames := flag.String("peers", "", "edge role: comma-separated fleet, name or name=addr (addr joins the health/peer-fill mesh)")
	edgeAdvertise := flag.String("edge-advertise", "", "edge role: address advertised to the origin for push invalidation (empty = pull only)")
	edgeCacheBytes := flag.Int64("edge-cache-bytes", 8<<20, "edge role: byte cap on the local cache shard")
	edgeTTL := flag.Duration("edge-ttl", 30*time.Second, "edge role: cached entry freshness")
	edgeMaxStale := flag.Duration("edge-max-stale", 10*time.Minute, "edge role: how far past TTL an entry may be served when the origin is down")
	edgePoll := flag.Duration("edge-poll", 250*time.Millisecond, "edge role: invalidation poll interval (±20% jitter per tick)")
	edgeHeartbeat := flag.Duration("edge-heartbeat", 500*time.Millisecond, "edge role: peer heartbeat interval")
	edgeSuspectAfter := flag.Duration("edge-suspect-after", 0, "edge role: silence before a peer is suspected (0 = 3x heartbeat)")
	edgeDeadAfter := flag.Duration("edge-dead-after", 0, "edge role: silence before a peer is declared dead and removed from the ring (0 = 2x suspect)")
	edgePeerFill := flag.Int("edge-peer-fill", 0, "edge role: ring successors consulted on a breaker-open miss (0 = 2, negative disables)")
	edgeSnapshot := flag.String("edge-snapshot", "", "edge role: shard snapshot path for crash-safe warm restart (empty disables)")
	edgeSnapshotInterval := flag.Duration("edge-snapshot-interval", 5*time.Second, "edge role: background snapshot interval")
	originAttempts := flag.Int("origin-attempts", 3, "edge role: upstream attempts per pull")
	originAttemptTimeout := flag.Duration("origin-attempt-timeout", 2*time.Second, "edge role: per-attempt upstream timeout")
	originBreakerFailures := flag.Int("origin-breaker-failures", 3, "edge role: consecutive upstream failures that open the origin breaker")
	originProbeCooldown := flag.Duration("origin-probe-cooldown", 500*time.Millisecond, "edge role: open-breaker cooldown before a probe")
	flag.Parse()

	// Contention profiling for the wire fast path: off by default
	// (sampling costs the hot loop), switched on per run when pprof's
	// mutex/block profiles need data. Set before any serving starts so
	// the profiles cover the whole process lifetime.
	if *mutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexProfileFraction)
	}
	if *blockProfileRate > 0 {
		runtime.SetBlockProfileRate(*blockProfileRate)
	}

	if *role == "edge" {
		runEdge(edgeOpts{
			addr:             *addr,
			originAddr:       *originAddr,
			name:             *edgeName,
			peers:            *peerNames,
			advertise:        *edgeAdvertise,
			cacheBytes:       *edgeCacheBytes,
			ttl:              *edgeTTL,
			maxStale:         *edgeMaxStale,
			poll:             *edgePoll,
			heartbeat:        *edgeHeartbeat,
			suspectAfter:     *edgeSuspectAfter,
			deadAfter:        *edgeDeadAfter,
			peerFill:         *edgePeerFill,
			snapshot:         *edgeSnapshot,
			snapshotInterval: *edgeSnapshotInterval,
			attempts:         *originAttempts,
			attemptTimeout:   *originAttemptTimeout,
			breakerFailures:  *originBreakerFailures,
			probeCooldown:    *originProbeCooldown,
			retryBudget:      *retryBudget,
			opsAddr:          *opsAddr,
			drainTimeout:     *drainTimeout,
		})
		return
	}
	if *role != "origin" && *role != "standby" {
		log.Fatalf("unknown role %q (want origin|standby|edge)", *role)
	}
	isStandby := *role == "standby"
	if isStandby && *originAddr == "" {
		log.Fatal("-role standby requires -origin-addr (the primary to mirror)")
	}

	srv, err := core.NewServer(*imageModel, *textModel)
	if err != nil {
		log.Fatalf("building server: %v", err)
	}
	srv.SetOverload(overload.Config{
		MaxGenWorkers: *maxGenWorkers,
		QueueDeadline: *queueDeadline,
		AdmitRPS:      *admitRPS,
		AdmitBurst:    *admitBurst,
		Breaker: overload.BreakerConfig{
			FailureThreshold: *breakerFailures,
			Cooldown:         *breakerCooldown,
			ProbeBudget:      *breakerProbes,
		},
		CacheBytes: *genCacheBytes,
		RetryAfter: *retryAfter,
	})
	srv.SetArtifactCacheBytes(*artifactCacheBytes)
	srv.SetGenWorkers(*genParallel)
	srv.SetAbusePolicy(&http2.AbusePolicy{
		Disabled:           *abuseOff,
		Window:             *abuseWindow,
		RapidResetBudget:   *abuseRSTBudget,
		PingBudget:         *abusePingBudget,
		SettingsBudget:     *abuseSettingsBudget,
		WindowUpdateBudget: *abuseWUBudget,
		EmptyDataBudget:    *abuseEmptyDataBudget,
	})
	switch *policy {
	case "generative":
		srv.Policy = core.PolicyGenerative
	case "traditional":
		srv.Policy = core.PolicyTraditional
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	pages := []*core.Page{
		workload.WikimediaLandscape(),
		workload.NewsArticle(),
		workload.TravelBlog(),
	}
	for _, p := range pages {
		srv.AddPage(p)
		fmt.Printf("serving %s (%d placeholders, media ratio %.1fx)\n",
			p.Path, len(p.Placeholders()), p.MediaCompressionRatio())
	}
	// The CDN control surface: edge replicas poll /sww-cdn/ for the
	// sequenced invalidation feed (fed by unpublishes and evictions)
	// and are pushed new entries when they advertise a push address.
	epochDir := *originEpochDir
	if epochDir == "" {
		epochDir = *originLogDir
	}
	origin, err := cdn.NewOriginWithConfig(srv, cdn.OriginConfig{
		MaxLog:   *invalLog,
		LogDir:   *originLogDir,
		EpochDir: epochDir,
		Standby:  isStandby,
	})
	if err != nil {
		log.Fatalf("origin log: %v", err)
	}
	fmt.Printf("cdn: invalidation feed on %s (log depth %d, role %s, epoch %d, seq %d)\n",
		cdn.ControlPrefix, *invalLog, origin.Role(), origin.Epoch(), origin.Seq())
	if *originLogDir != "" {
		fmt.Printf("cdn: durable invalidation log in %s\n", *originLogDir)
	}
	var standby *cdn.Standby
	if isStandby {
		primary := *originAddr
		standby = cdn.NewStandby(origin, cdn.StandbyConfig{
			Name:          "standby",
			AdvertiseAddr: *standbyAdvertise,
			PrimaryDial: func() (net.Conn, error) {
				return net.DialTimeout("tcp", primary, 5*time.Second)
			},
			PollInterval: *standbyPoll,
			PromoteAfter: *promoteAfter,
			Retry:        core.RetryPolicy{MaxAttempts: 1, AttemptTimeout: 2 * time.Second},
		})
		standby.Start()
		fmt.Printf("cdn: standby mirroring %s (poll %v, promote after %v)\n",
			primary, *standbyPoll, *promoteAfter)
	}

	// Telemetry attaches after the overload/cache flags above so the
	// adopted counters are the ones actually serving.
	if *opsAddr != "" {
		set := telemetry.NewSet()
		srv.EnableTelemetry(set)
		origin.Register(set.Registry)
		if standby != nil {
			standby.Register(set.Registry)
		}
		ol, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			log.Fatalf("ops listen: %v", err)
		}
		go func() { log.Fatalf("ops listener: %v", set.Serve(ol)) }()
		fmt.Printf("ops: metrics/statusz/tracez/pprof on http://%s\n", ol.Addr())
	}

	sww, trad := srv.StorageBytes()
	fmt.Printf("storage: %d B as SWW vs %d B traditional (%.1fx)\n",
		sww, trad, float64(trad)/float64(sww))
	fmt.Printf("overload: %d gen workers, queue deadline %v, admit %.0f rps, gen cache %d B\n",
		*maxGenWorkers, *queueDeadline, *admitRPS, *genCacheBytes)
	fmt.Printf("fast path: artifact cache %d B, gen parallelism %d (0 = device default)\n",
		*artifactCacheBytes, *genParallel)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	proto := "h2c"
	if *useH3 {
		proto = "h3 (QUIC-shaped over TCP)"
	}
	fmt.Printf("sww-server listening on %s (%s, policy=%s)\n", l.Addr(), proto, *policy)
	if *useH3 {
		// The h3 mapping has no graceful GOAWAY drain yet; a signal
		// closes the listener and exits after the grace period.
		stop := notifyShutdown()
		go func() {
			<-stop
			fmt.Println("shutdown: closing listener")
			l.Close()
			time.Sleep(*drainTimeout)
			os.Exit(0)
		}()
		h3 := srv.H3Server()
		for {
			nc, err := l.Accept()
			if err != nil {
				log.Fatal(err)
			}
			go h3.ServeConn(nc)
		}
	}
	serveDraining(l, srv.StartConn, *drainTimeout, func() {
		if standby != nil {
			standby.Close()
		}
		origin.Close()
	})
}

// notifyShutdown returns a channel that fires on SIGTERM/SIGINT.
func notifyShutdown() <-chan os.Signal {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	return stop
}

// connTable tracks live server connections so a drain can walk them.
// Entries remove themselves when their connection dies, so the table
// stays proportional to live connections, not connection history.
type connTable struct {
	mu    sync.Mutex
	conns map[*http2.ServerConn]struct{}
}

func newConnTable() *connTable {
	return &connTable{conns: map[*http2.ServerConn]struct{}{}}
}

func (t *connTable) add(sc *http2.ServerConn) {
	t.mu.Lock()
	t.conns[sc] = struct{}{}
	t.mu.Unlock()
	go func() {
		<-sc.Done()
		t.mu.Lock()
		delete(t.conns, sc)
		t.mu.Unlock()
	}()
}

func (t *connTable) snapshot() []*http2.ServerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*http2.ServerConn, 0, len(t.conns))
	for sc := range t.conns {
		out = append(out, sc)
	}
	return out
}

// serveDraining accepts connections through start until SIGTERM or
// SIGINT, then drains: the listener closes (no new connections), every
// live connection gets a GOAWAY and up to timeout for its in-flight
// streams to finish, then onDrained runs and the process exits 0.
func serveDraining(l net.Listener, start func(net.Conn) *http2.ServerConn, timeout time.Duration, onDrained func()) {
	table := newConnTable()
	stop := notifyShutdown()
	done := make(chan struct{})
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				close(done)
				return
			}
			table.add(start(nc))
		}
	}()
	<-stop
	fmt.Println("shutdown: draining in-flight streams")
	l.Close()
	<-done
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, sc := range table.snapshot() {
		wg.Add(1)
		go func(sc *http2.ServerConn) {
			defer wg.Done()
			sc.CloseContext(ctx)
		}(sc)
	}
	wg.Wait()
	if onDrained != nil {
		onDrained()
	}
	fmt.Println("shutdown: drained")
}

type edgeOpts struct {
	addr, originAddr, name, peers string
	advertise                     string
	cacheBytes                    int64
	ttl, maxStale, poll           time.Duration
	heartbeat                     time.Duration
	suspectAfter, deadAfter       time.Duration
	peerFill                      int
	snapshot                      string
	snapshotInterval              time.Duration
	attempts                      int
	attemptTimeout                time.Duration
	breakerFailures               int
	probeCooldown                 time.Duration
	retryBudget                   float64
	opsAddr                       string
	drainTimeout                  time.Duration
}

// parsePeers splits the -peers flag into ring names and the dialable
// subset. Each entry is "name" (placement only) or "name=addr"
// (placement plus mesh membership, heartbeats and peer-fill).
func parsePeers(spec, self string) (names []string, dials map[string]core.DialFunc) {
	dials = map[string]core.DialFunc{}
	if spec == "" {
		return []string{self}, dials
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, addr, hasAddr := strings.Cut(entry, "=")
		names = append(names, name)
		if hasAddr && name != self {
			addr := addr
			dials[name] = func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 5*time.Second)
			}
		}
	}
	return names, dials
}

// runEdge runs one edge replica: a local cache shard in front of the
// origin, serving terminal clients, heartbeating its mesh peers, and
// reconciling the invalidation feed by push and anti-entropy poll.
func runEdge(o edgeOpts) {
	if o.originAddr == "" {
		log.Fatal("-role edge requires -origin-addr")
	}
	peers, peerDials := parsePeers(o.peers, o.name)
	origins := core.NewEndpointSet(core.EndpointHealthConfig{
		FailureThreshold: o.breakerFailures,
		ProbeCooldown:    o.probeCooldown,
	})
	// -origin-addr is a failover list: the first entry (the primary)
	// is preferred while healthy, later ones (a warm standby) take
	// over when its breaker opens or it answers fenced.
	var originAddrs []string
	for i, addr := range strings.Split(o.originAddr, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		name := "origin"
		if i > 0 {
			name = fmt.Sprintf("origin%d", i+1)
		}
		addr := addr
		origins.Add(name, func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		})
		originAddrs = append(originAddrs, addr)
	}
	if len(originAddrs) == 0 {
		log.Fatal("-role edge requires at least one address in -origin-addr")
	}
	e := cdn.NewEdge(cdn.EdgeConfig{
		Name:         o.name,
		CacheBytes:   o.cacheBytes,
		TTL:          o.ttl,
		MaxStale:     o.maxStale,
		PollInterval: o.poll,
		Retry: core.RetryPolicy{
			MaxAttempts:    o.attempts,
			AttemptTimeout: o.attemptTimeout,
		},
		Peers:            peers,
		PeerDials:        peerDials,
		AdvertiseAddr:    o.advertise,
		Heartbeat:        o.heartbeat,
		SuspectAfter:     o.suspectAfter,
		DeadAfter:        o.deadAfter,
		PeerFillFanout:   o.peerFill,
		SnapshotPath:     o.snapshot,
		SnapshotInterval: o.snapshotInterval,
		RetryBudgetRatio: o.retryBudget,
	}, origins)
	if o.opsAddr != "" {
		set := telemetry.NewSet()
		e.Register(set.Registry)
		ol, err := net.Listen("tcp", o.opsAddr)
		if err != nil {
			log.Fatalf("ops listen: %v", err)
		}
		go func() { log.Fatalf("ops listener: %v", set.Serve(ol)) }()
		fmt.Printf("ops: metrics/statusz/tracez/pprof on http://%s\n", ol.Addr())
	}
	if s := e.Stats(); s.SnapshotLoaded > 0 {
		fmt.Printf("edge: restored %d entries from %s (seq %d)\n",
			s.SnapshotLoaded, o.snapshot, s.LastSeq)
	}
	e.Start()

	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("sww-edge %q listening on %s, origins %v, fleet %v (%d mesh peers)\n",
		o.name, l.Addr(), originAddrs, peers, len(peerDials))
	fmt.Printf("edge: cache %d B, ttl %v, max-stale %v, poll %v, snapshot %q\n",
		o.cacheBytes, o.ttl, o.maxStale, o.poll, o.snapshot)
	// Close flushes the final snapshot after the drain, so entries
	// cached by the very last in-flight streams survive the restart.
	serveDraining(l, e.StartConn, o.drainTimeout, func() {
		if err := e.Close(); err != nil {
			log.Printf("edge close: %v", err)
		}
	})
}
