// Command sww-bench regenerates every table and figure of the paper's
// evaluation and prints each as a paper-vs-measured comparison.
//
// Usage:
//
//	sww-bench [-only t1|t2|fig2|steps|sizes|text|article|matrix|
//	                 energy|carbon|traffic|cdn|video|storage|ablations|
//	                 chaos|overload|abuse|fastpath|telemetry|edgetier|
//	                 selfheal|originha|capacity]
//	          [-quick] [-capacity-out FILE]
//
// Without -only, all experiments run in order. -quick trims the
// heavier sweeps for CI smoke runs. -capacity-out writes the E27
// capacity curve as a benchmark-JSON artifact (the format
// sww-benchjson emits), so CI can archive it and gate goodput against
// a committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sww/internal/cdn"

	"sww/internal/experiments"
	_ "sww/internal/genai/imagegen"
	_ "sww/internal/genai/textgen"
)

func main() {
	only := flag.String("only", "", "run a single experiment")
	quick := flag.Bool("quick", false, "trim heavy sweeps for smoke runs")
	capOut := flag.String("capacity-out", "", "write the E27 capacity curve as benchmark JSON to this file")
	flag.Parse()
	quickMode = *quick
	capacityOut = *capOut

	all := []struct {
		key  string
		name string
		run  func() error
	}{
		{"matrix", "E2 §6.2 capability matrix", runMatrix},
		{"fig2", "E3 Figure 2: Wikimedia landscape page", runFig2},
		{"article", "E4 §6.2 text experiment: newspaper article", runArticle},
		{"t1", "E5 Table 1: ELO & CLIP, time per step", runTable1},
		{"steps", "E6a §6.3.1 inference-step sweep", runSteps},
		{"sizes", "E6b §6.3.1 image-size sweep", runSizes},
		{"text", "E7 §6.3.2 text-to-text models", runText},
		{"t2", "E8 Table 2: compression, time & energy", runTable2},
		{"energy", "E9 §6.4 transmit vs generate", runEnergy},
		{"carbon", "E10 §6.4 embodied carbon", runCarbon},
		{"traffic", "E11 §7 traffic projection", runTraffic},
		{"cdn", "E12 §2.2 CDN modes", runCDN},
		{"video", "E13 §3.2 video negotiation", runVideo},
		{"storage", "§2.1 server storage", runStorage},
		{"ablations", "design-choice ablations", runAblations},
		{"h3", "E14 §3.1 HTTP/3 negotiation parity", runH3},
		{"upscale", "E15 §2.2 content upscaling", runUpscale},
		{"personalize", "E16 §2.3 personalization & echo chamber", runPersonalize},
		{"placement", "E17 §7 cache-placement flexibility", runPlacement},
		{"chaos", "E18 fault injection & degradation ladder", runChaos},
		{"overload", "E19 server overload & load-shed ladder", runOverload},
		{"abuse", "E20 abuse-rate defense under attack", runAbuse},
		{"fastpath", "E21 generation fast path & artifact cache", runFastpath},
		{"telemetry", "E22 operational telemetry cross-check", runTelemetry},
		{"edgetier", "E23 edge tier failover & serve-stale chaos", runEdgeTier},
		{"selfheal", "E24 self-healing mesh: restart, push loss, peer-fill", runSelfHeal},
		{"originha", "E25 origin HA: durable log, failover, fencing, retry budget", runOriginHA},
		{"capacity", "E27 open-loop capacity model & knee", runCapacity},
	}
	failed := false
	for _, e := range all {
		if *only != "" && e.key != *only {
			continue
		}
		fmt.Printf("\n=== %s ===\n", e.name)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.key, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func runTable1() error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %10s %10s %10s %10s %12s %14s\n",
		"model", "paper ELO", "ELO", "paper CLIP", "CLIP", "laptop t/st", "workstn t/st")
	for _, r := range rows {
		lap, wkst := "–", "–"
		if r.LaptopStep > 0 {
			lap = fmt.Sprintf("%.2fs", r.LaptopStep.Seconds())
		}
		if r.WorkstationStep > 0 {
			wkst = fmt.Sprintf("%.2fs", r.WorkstationStep.Seconds())
		}
		fmt.Printf("%-14s %10.0f %10.0f %10.2f %10.3f %12s %14s\n",
			r.Model, r.PaperELO, r.ELO, r.PaperCLIP, r.CLIP, lap, wkst)
	}
	return nil
}

func runSteps() error {
	rows, err := experiments.StepSweep()
	if err != nil {
		return err
	}
	fmt.Printf("paper: CLIP ~flat from 10..60 steps, time linear in steps (laptop, SD3)\n")
	fmt.Printf("%6s %8s %10s\n", "steps", "CLIP", "gen time")
	for _, r := range rows {
		fmt.Printf("%6d %8.3f %9.1fs\n", r.Steps, r.CLIP, r.GenTime.Seconds())
	}
	return nil
}

func runSizes() error {
	rows, err := experiments.SizeSweep()
	if err != nil {
		return err
	}
	fmt.Printf("paper anchors (SD3, 15 steps): laptop 7/19/310s, workstation 1.0/1.7/6.2s\n")
	fmt.Printf("%10s %12s %14s\n", "size", "laptop", "workstation")
	for _, r := range rows {
		fmt.Printf("%5dx%-4d %11.1fs %13.2fs\n", r.Dim, r.Dim, r.Laptop.Seconds(), r.Workstation.Seconds())
	}
	return nil
}

func runText() error {
	rows, err := experiments.Text2Text()
	if err != nil {
		return err
	}
	fmt.Printf("paper: SBERT 0.82-0.91; overshoot mean ~1.3%%, quartiles often >10%%, max 20%%;\n")
	fmt.Printf("       times 6.98-14.33s (workstation) / 16.06-34.04s (laptop); benefit only 2.5x\n")
	fmt.Printf("%-18s %11s %7s %9s %9s %9s %8s\n",
		"model", "paper SBERT", "SBERT", "ovsh mean", "p25", "p75", "speedup")
	for _, r := range rows {
		fmt.Printf("%-18s %11.2f %7.3f %8.1f%% %8.1f%% %8.1f%% %7.2fx\n",
			r.Model, r.PaperSBERT, r.SBERT,
			100*r.OvershootMean, 100*r.OvershootP25, 100*r.OvershootP75,
			r.SpeedupWorkstation)
	}
	fmt.Printf("\n%-18s", "gen time (wkst/laptop)")
	for _, w := range []int{50, 100, 150, 250} {
		fmt.Printf(" %12dw", w)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-18s", r.Model)
		for _, w := range []int{50, 100, 150, 250} {
			t := r.Times[w]
			fmt.Printf(" %5.1f/%-6.1fs", t.Workstation.Seconds(), t.Laptop.Seconds())
		}
		fmt.Println()
	}
	return nil
}

func runTable2() error {
	rows, err := experiments.Table2()
	if err != nil {
		return err
	}
	fmt.Printf("paper rows: 19.14x/7s/0.02Wh/1.0s/0.04Wh; 76.56x/19s/0.05Wh/1.7s/0.06Wh;\n")
	fmt.Printf("            306.24x/310s/0.90Wh/6.2s/0.21Wh; 1.93x/32s/0.01Wh/13.0s/0.51Wh\n")
	fmt.Printf("%-16s %9s %9s %8s %10s %10s %10s %10s\n",
		"media", "size[B]", "meta[B]", "ratio", "lap gen", "lap Wh", "wkst gen", "wkst Wh")
	for _, r := range rows {
		fmt.Printf("%-16s %9d %9d %8.2f %9.1fs %10.3f %9.1fs %10.3f\n",
			r.Label, r.SizeBytes, r.MetadataBytes, r.Ratio,
			r.LaptopGen.Seconds(), r.LaptopEnergyWh,
			r.WorkstationGen.Seconds(), r.WorkstationWhGen)
	}
	return nil
}

func runFig2() error {
	r, err := experiments.Fig2Wikimedia()
	if err != nil {
		return err
	}
	fmt.Printf("paper: 49 images, 1400kB -> 8.92kB (157x, worst case 68x);\n")
	fmt.Printf("       laptop 310s (6.32s/image), workstation ~49s (~1s/image)\n\n")
	fmt.Printf("images:                 %d\n", r.Images)
	fmt.Printf("original media:         %d B\n", r.OriginalBytes)
	fmt.Printf("prompt metadata:        %d B\n", r.MetadataBytes)
	fmt.Printf("compression factor:     %.1fx (worst case %.1fx)\n", r.CompressionFactor, r.WorstCaseFactor)
	fmt.Printf("wire bytes generative:  %d B\n", r.GenerativeWireBytes)
	fmt.Printf("wire bytes traditional: %d B (page-level factor %.1fx)\n", r.TraditionalWireBytes, r.WireFactor)
	fmt.Printf("laptop generation:      %.0fs (%.2fs/image), %.2f Wh\n",
		r.LaptopGen.Seconds(), r.LaptopPerImage.Seconds(), r.LaptopGenWh)
	fmt.Printf("server generation:      %.0fs (%.2fs/image)\n",
		r.ServerGen.Seconds(), r.ServerPerImage.Seconds())
	fmt.Printf("mean CLIP of page:      %.3f\n", r.MeanCLIP)
	fmt.Printf("transmit energy saved:  %.4f Wh\n", r.TransmitSavedWh)
	return nil
}

func runArticle() error {
	r, err := experiments.TextArticle()
	if err != nil {
		return err
	}
	fmt.Printf("paper: 2400B -> 778B (3.1x); laptop 41.9s, workstation >10s\n\n")
	fmt.Printf("original:        %d B\n", r.OriginalBytes)
	fmt.Printf("prompt form:     %d B\n", r.PromptBytes)
	fmt.Printf("compression:     %.2fx\n", r.Compression)
	fmt.Printf("laptop gen:      %.1fs\n", r.LaptopGen.Seconds())
	fmt.Printf("workstation gen: %.1fs\n", r.WorkstationGen.Seconds())
	fmt.Printf("SBERT vs source: %.3f\n", r.SBERT)
	return nil
}

func runMatrix() error {
	rows, err := experiments.CapabilityMatrix()
	if err != nil {
		return err
	}
	fmt.Printf("paper: only both-support uses generation; all else default HTTP/2\n")
	fmt.Printf("%-14s %-18s %-18s %-18s %-12s %s\n",
		"scenario", "server", "client", "negotiated", "served", "ok")
	for _, r := range rows {
		fmt.Printf("%-14s %-18s %-18s %-18s %-12s %v\n",
			r.Scenario, r.Server, r.Client, r.Negotiated, r.ServedMode, r.OK)
	}
	return nil
}

func runEnergy() error {
	c, err := experiments.CompareEnergy()
	if err != nil {
		return err
	}
	fmt.Printf("paper: large image transmit ~10ms vs 6.2s generation (620x);\n")
	fmt.Printf("       transmit ~0.005Wh = 2.5%% of workstation generation (0.21Wh)\n\n")
	fmt.Printf("transmit (100Mbps):  %v, %.4f Wh\n", c.TransmitTime, c.TransmitWh)
	fmt.Printf("workstation gen:     %.1fs, %.3f Wh\n", c.GenerationTime.Seconds(), c.GenerationWh)
	fmt.Printf("generation slowdown: %.0fx\n", c.SlowdownFactor)
	fmt.Printf("transmit share:      %.1f%%\n", 100*c.TransmitShare)
	fmt.Printf("laptop gen energy:   %.2f Wh\n", c.LaptopGenerationWh)
	return nil
}

func runCarbon() error {
	fig2, err := experiments.Fig2Wikimedia()
	if err != nil {
		return err
	}
	c := experiments.CarbonSavings(fig2.CompressionFactor)
	fmt.Printf("paper: 6-7 kgCO2e/TB SSD; exabyte-scale compression saves millions of kg\n\n")
	fmt.Printf("per TB:                %.1f kgCO2e\n", c.PerTBKg)
	fmt.Printf("1 EB media x10 sites:  %.2e kgCO2e\n", c.MediaExabyteKg)
	fmt.Printf("as prompts (%.0fx):     %.2e kgCO2e\n", fig2.CompressionFactor, c.PromptExabyteKg)
	fmt.Printf("saved:                 %.2e kgCO2e (millions: %v)\n", c.SavedKg, c.SavedKg > 1e6)
	return nil
}

func runTraffic() error {
	fig2, err := experiments.Fig2Wikimedia()
	if err != nil {
		return err
	}
	t := experiments.ProjectTraffic(fig2.CompressionFactor)
	fmt.Printf("paper: 2-3 EB/month mobile web -> tens of PB at ~two orders of magnitude\n\n")
	fmt.Printf("baseline:   %.1f EB/month\n", t.BaselineEBPerMonth)
	fmt.Printf("compression: %.0fx (measured, Figure 2 media ratio)\n", t.CompressionFactor)
	fmt.Printf("projected:  %.1f PB/month\n", t.ProjectedPBPerMonth)
	return nil
}

func runCDN() error {
	rows, err := experiments.CDNSweep(2000, 30000, 64<<20)
	if err != nil {
		return err
	}
	fmt.Printf("paper §2.2: prompt caching keeps storage benefit; edge generation\n")
	fmt.Printf("loses transmission benefit; energy trade-off at the edge\n")
	fmt.Printf("%-16s %12s %8s %14s %14s %10s %12s\n",
		"mode", "cache[B]", "hit", "to users[B]", "from origin[B]", "gen[Wh]", "embodied[kg]")
	for _, r := range rows {
		fmt.Printf("%-16s %12d %7.1f%% %14d %14d %10.1f %12.6f\n",
			r.Mode, r.CacheBytes, 100*r.HitRate, r.BytesToUsers, r.BytesFromOrigin,
			r.EdgeGenEnergyWh, r.EmbodiedKg)
	}
	return nil
}

func runVideo() error {
	rows := experiments.VideoSweep()
	fmt.Printf("paper §3.2: 60->30fps halves data; 4K->HD saves 2.3x (7GB/h -> 3GB/h)\n")
	fmt.Printf("%-34s %-24s %10s\n", "client ability", "delivered", "savings")
	for _, r := range rows {
		fmt.Printf("%-34s %-24s %9.2fx\n", r.Ability, r.Delivered.Name, r.Savings)
	}
	srows, err := experiments.StreamingExperiment()
	if err != nil {
		return err
	}
	fmt.Printf("\n10-minute 4K60 playback simulation (the evaluation §3.2 defers):\n")
	fmt.Printf("%-24s %-22s %8s %9s %8s %10s %10s\n",
		"device", "ability", "wire", "savings", "rebuf", "rt-factor", "boost[Wh]")
	for _, r := range srows {
		rep := r.Report
		fmt.Printf("%-24s %-22s %7.2fG %8.2fx %8d %10.2f %10.3f\n",
			r.Device, r.Ability, float64(rep.BytesDownloaded)/1e9,
			rep.SavingsFactor, rep.Rebuffers, rep.RealTimeFactor, rep.BoostEnergyWh)
	}
	return nil
}

func runStorage() error {
	s, err := experiments.StorageComparison()
	if err != nil {
		return err
	}
	fmt.Printf("paper §2.1: servers store prompts rather than content\n\n")
	fmt.Printf("SWW storage:         %d B\n", s.SWWBytes)
	fmt.Printf("traditional storage: %d B\n", s.TraditionalBytes)
	fmt.Printf("ratio:               %.1fx\n", s.Ratio)
	return nil
}

func runH3() error {
	rows, err := experiments.H3CapabilityMatrix()
	if err != nil {
		return err
	}
	fmt.Printf("paper §3.1: \"similar use of SETTINGS under HTTP/3 can allow to advertise\"\n")
	fmt.Printf("%-14s %-18s %s\n", "scenario", "negotiated", "ok")
	for _, r := range rows {
		fmt.Printf("%-14s %-18s %v\n", r.Scenario, r.Negotiated, r.OK)
	}
	return nil
}

func runUpscale() error {
	r, err := experiments.UpscaleExperiment()
	if err != nil {
		return err
	}
	fmt.Printf("paper §2.2: upscaling reduces unique-content storage and is\n")
	fmt.Printf("\"usually faster than content generation, with sub-second inference\"\n\n")
	fmt.Printf("photos:            %d (128\u00b2 stored, 512\u00b2 rendered)\n", r.Photos)
	fmt.Printf("wire, upscale:     %d B\n", r.UpscaleWireBytes)
	fmt.Printf("wire, traditional: %d B (%.1fx savings)\n", r.TraditionalWireBytes, r.WireSavings)
	fmt.Printf("upscale time:      %.2fs (laptop, all photos)\n", r.UpscaleTime.Seconds())
	fmt.Printf("generate instead:  %.1fs (%.0fx slower)\n", r.GenerateTime.Seconds(), r.SpeedFactor)
	return nil
}

func runPersonalize() error {
	r, err := experiments.PersonalizationExperiment()
	if err != nil {
		return err
	}
	fmt.Printf("paper §2.3: on-device personalization; \"potential for harm ... echo chamber\"\n\n")
	fmt.Printf("echo-chamber index, neutral:      %.3f\n", r.NeutralIndex)
	fmt.Printf("echo-chamber index, personalized: %.3f (drift +%.3f)\n", r.PersonalizedIndex, r.Drift)
	fmt.Printf("prompt adherence:  %.3f -> %.3f (preserved)\n", r.NeutralCLIP, r.PersonalizedCLIP)
	return nil
}

func runPlacement() error {
	load := cdn.DefaultPlacementLoad()
	rows := cdn.PlacementSweep(load)
	fmt.Printf("paper §7: traffic reduction \"provides more flexibility in cache placement,\n")
	fmt.Printf("without breaching backbone traffic constraints\"; latency becomes minor\n")
	fmt.Printf("(%.0f req/s, %.0f Gbps backbone, %.0f%% hit rate)\n\n",
		load.RequestsPerSecond, load.BackboneCapacityGbps, 100*load.HitRate)
	fmt.Printf("%-14s %-7s %6s %14s %10s %14s %12s\n",
		"placement", "mode", "sites", "backbone", "feasible", "page latency", "rtt share")
	for _, r := range rows {
		mode := "media"
		if r.SWW {
			mode = "sww"
		}
		fmt.Printf("%-14s %-7s %6d %11.3fGbps %10v %14v %11.2f%%\n",
			r.Placement.Name, mode, r.StorageSites, r.BackboneGbps, r.Feasible,
			r.PageLatency.Round(time.Millisecond), 100*r.LatencyShare)
	}
	return nil
}

func runChaos() error {
	rows, err := experiments.ChaosSweep()
	if err != nil {
		return err
	}
	fmt.Printf("resilient fetch of the travel blog under injected faults;\n")
	fmt.Printf("every recovering row must render the clean row's asset count\n")
	fmt.Printf("%-22s %-4s %8s %6s %-12s %7s %9s %s\n",
		"scenario", "ok", "attempts", "dials", "mode", "assets", "wire[B]", "note")
	for _, r := range rows {
		note := ""
		if r.Degraded {
			note = "degraded: " + r.DegradeReason
		} else if r.Err != nil {
			note = r.Err.Error()
		}
		if len(note) > 48 {
			note = note[:48] + "…"
		}
		fmt.Printf("%-22s %-4v %8d %6d %-12s %7d %9d %s\n",
			r.Scenario, r.OK, r.Attempts, r.Dials, r.Mode, r.Assets, r.WireBytes, note)
	}
	return nil
}

// quickMode mirrors the -quick flag for experiments with a trimmed
// variant.
var quickMode bool

func runOverload() error {
	rows, err := experiments.OverloadSweep(quickMode)
	if err != nil {
		return err
	}
	fmt.Printf("capacity-limited generative server at multiples of admitted generation\n")
	fmt.Printf("capacity; healthy signature: flat goodput beyond 1x, excess shed as 503.\n")
	fmt.Printf("p50/p99 measure from each request's intended send slot; legacy columns\n")
	fmt.Printf("measure from the actual send (the coordinated-omission-prone way).\n")
	fmt.Printf("%-5s %9s %6s %5s %6s %5s %9s %7s %9s %9s %9s %9s %6s\n",
		"mult", "offered", "reqs", "ok", "shed", "err", "goodput", "shed%", "p50", "p99", "leg p50", "leg p99", "flips")
	for _, r := range rows {
		fmt.Printf("%4.1fx %7.0f/s %6d %5d %6d %5d %7.0f/s %6.1f%% %9v %9v %9v %9v %6d\n",
			r.Multiplier, r.OfferedRPS, r.Requests, r.OK, r.Shed, r.Errors,
			r.GoodputRPS, 100*r.ShedRate,
			r.P50.Round(time.Millisecond), r.P99.Round(time.Millisecond),
			r.LegacyP50.Round(time.Millisecond), r.LegacyP99.Round(time.Millisecond),
			r.Stats.ShedPolicyFlip)
	}
	return nil
}

func runAblations() error {
	n := experiments.NegotiationAblation(50)
	fmt.Printf("SETTINGS vs per-request header (50 requests/conn):\n")
	fmt.Printf("  SETTINGS total: %d B; header total: %d B\n",
		n.SettingsTotalBytes, n.HeaderTotalBytes)

	p, err := experiments.PreloadAblation()
	if err != nil {
		return err
	}
	fmt.Printf("pipeline preloading (§4.1) on the %d-image page:\n", p.Items)
	fmt.Printf("  preload load time: %v; per-invocation reload: %v (%.0f%% overhead)\n",
		p.PreloadLoadTime, p.ReloadLoadTime, p.ReloadOverheadPct)
	return nil
}

// runAbuse prints the E20 report as JSON (the acceptance numbers —
// legit goodput with and without attack, shed/GOAWAY counts — are the
// deliverable, so machine-readable output beats a table here) and
// fails if the defense missed its bars.
func runAbuse() error {
	rep, err := experiments.AbuseSweep(quickMode)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	fmt.Printf("legit goodput %.0f/s baseline vs %.0f/s under attack (ratio %.2f)\n",
		rep.BaselineGoodputRPS, rep.AttackGoodputRPS, rep.GoodputRatio)
	fmt.Printf("rapid-reset attacker: %d conns, %d pairs, %d calm RSTs, %d GOAWAYs; "+
		"ping flooder: %d conns, %d pings, %d GOAWAYs\n",
		rep.RapidReset.Conns, rep.RapidReset.Sent, rep.RapidReset.CalmRSTs, rep.RapidReset.GoAways,
		rep.PingFlood.Conns, rep.PingFlood.Sent, rep.PingFlood.GoAways)
	if rep.GoodputRatio < 0.75 {
		return fmt.Errorf("legit goodput under attack fell to %.2fx of baseline (want >= 0.75)",
			rep.GoodputRatio)
	}
	if rep.RapidReset.GoAways == 0 && rep.RapidReset.CalmRSTs == 0 {
		return fmt.Errorf("rapid-reset attacker was never escalated")
	}
	if rep.PingFlood.GoAways == 0 {
		return fmt.Errorf("ping flooder was never killed")
	}
	return nil
}

func runFastpath() error {
	rep, err := experiments.FastPathSweep(quickMode)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	fmt.Printf("cold fetch %.1fms, warm mean %.2fms over %d repeats (%.1fx); "+
		"client cache: %d hits / %d misses, %d entries, %d B\n",
		rep.ColdWall.Seconds()*1e3, rep.WarmWall.Seconds()*1e3, rep.Fetches-1, rep.Speedup,
		rep.ClientCache.Hits, rep.ClientCache.Misses, rep.ClientCache.Entries, rep.ClientCache.Bytes)
	fmt.Printf("invariants: sim gen time %v, media compression %.1fx on every fetch\n",
		rep.SimGenTime, rep.CompressionX)
	if !rep.AssetsIdentical {
		return fmt.Errorf("warm fetches did not byte-match the cold fetch's assets")
	}
	if rep.ClientCache.Hits == 0 {
		return fmt.Errorf("artifact cache recorded no hits across %d repeat fetches", rep.Fetches-1)
	}
	return nil
}

// runEdgeTier prints E23 as JSON (the acceptance numbers are the
// deliverable) and fails if the edge tier missed its availability
// bars: stale serving at >= 0.8x baseline goodput through an origin
// blackhole, a sub-1% client error rate with one of three edges dead,
// a reshard matching LookupN's prediction, and a partition-delayed
// invalidation reconciled on reconnect.
func runEdgeTier() error {
	rep, err := experiments.EdgeTierSweep(quickMode)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	fmt.Printf("goodput: baseline %.0f/s, origin blackholed %.0f/s (%.2fx, %d stale serves)\n",
		rep.Baseline.GoodputRPS, rep.Blackhole.GoodputRPS, rep.StaleGoodputRatio, rep.StaleServes)
	fmt.Printf("edge kill: error rate %.2f%% over %d fetches, %d failovers; "+
		"reshard of %d keys correct: %v\n",
		rep.KillErrorRate*100, rep.Kill.Fetches, rep.Failovers, rep.ReshardKeys, rep.ReshardCorrect)
	fmt.Printf("partition: warm copy served %v, reconciled in %v, unpublished page gone %v\n",
		rep.PartitionWarmServed, rep.ReconciledIn.Round(time.Millisecond), rep.InvalidatedGone)
	if rep.StaleServes == 0 {
		return fmt.Errorf("origin blackhole produced no stale serves")
	}
	if rep.StaleGoodputRatio < 0.8 {
		return fmt.Errorf("stale goodput fell to %.2fx of baseline (want >= 0.8)", rep.StaleGoodputRatio)
	}
	if rep.KillErrorRate >= 0.01 {
		return fmt.Errorf("error rate with one edge dead = %.2f%% (want < 1%%)", rep.KillErrorRate*100)
	}
	if !rep.ReshardCorrect {
		return fmt.Errorf("reshard after edge death did not match LookupN's prediction")
	}
	if !rep.PartitionWarmServed {
		return fmt.Errorf("partitioned edge dropped its warm copy")
	}
	if !rep.InvalidatedGone {
		return fmt.Errorf("invalidation issued during the partition never landed")
	}
	return nil
}

// runSelfHeal prints E24 as JSON and fails if the mesh missed its
// self-healing bars: a killed edge restarts warm from its snapshot
// with zero origin pulls and reconciles the invalidations it missed;
// pushes lost to a partition are repaired by the anti-entropy poller
// shortly after the heal; and a cold edge fills from its ring peer at
// >= 0.9x the warm edge's serve-stale goodput with the origin down.
func runSelfHeal() error {
	rep, err := experiments.SelfHealSweep(quickMode)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	fmt.Printf("warm restart: %d snapshot entries, %d warm hits, %d origin pulls; "+
		"seq reconciled %v, stale entry dropped %v\n",
		rep.SnapshotEntries, rep.WarmHits, rep.RestartPulls,
		rep.SeqReconciled, rep.RestartInvalGone)
	fmt.Printf("push loss: healthy push in %v; %d invalidations lost to the partition, "+
		"reconciled %v after heal (%.1f repair intervals of %v)\n",
		rep.PushLatency.Round(time.Microsecond), rep.LostInvals,
		rep.ReconcileAfter.Round(time.Millisecond), rep.ReconcileBounds, rep.PollInterval)
	fmt.Printf("peer-fill: baseline %.0f/s, cold edge %.0f/s (%.2fx); "+
		"%d fills, %d peer serves\n",
		rep.Baseline.GoodputRPS, rep.PeerFill.GoodputRPS, rep.FillGoodputRatio,
		rep.PeerFills, rep.PeerServes)
	if rep.RestartPulls != 0 {
		return fmt.Errorf("warm restart pulled the origin %d times (want 0)", rep.RestartPulls)
	}
	if !rep.SeqReconciled {
		return fmt.Errorf("restarted edge never caught up with the invalidation feed")
	}
	if !rep.RestartInvalGone {
		return fmt.Errorf("invalidation issued during the outage was served stale after restart")
	}
	if rep.PushApplied == 0 {
		return fmt.Errorf("healthy-path push was never applied")
	}
	// "Shortly after the heal": one jittered poll tick plus the error
	// backoff the partition built up — comfortably inside 10 intervals.
	if rep.ReconcileBounds > 10 {
		return fmt.Errorf("anti-entropy took %.1f repair intervals (want <= 10)", rep.ReconcileBounds)
	}
	if rep.PeerFills == 0 {
		return fmt.Errorf("cold edge never peer-filled")
	}
	if rep.FillGoodputRatio < 0.9 {
		return fmt.Errorf("peer-fill goodput fell to %.2fx of serve-stale baseline (want >= 0.9)",
			rep.FillGoodputRatio)
	}
	return nil
}

// runOriginHA prints E25 as JSON and fails if origin high availability
// missed its bars: a restarted origin resumes its durable sequence and
// the edge reconciles with zero resets; a killed primary's standby
// promotes with zero lost sequences and the edge fails over to it; the
// restarted zombie is epoch-fenced; and the retry budget holds a
// blackhole storm's upstream attempts to burst + ratio x pulls.
func runOriginHA() error {
	rep, err := experiments.OriginHASweep(quickMode)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	fmt.Printf("warm restart: seq %d -> %d, %d edge resets, caught up %v\n",
		rep.SeqBeforeRestart, rep.SeqAfterRestart, rep.RestartResets, rep.RestartCaughtUp)
	fmt.Printf("failover: primary died at seq %d; standby promoted to epoch %d at seq %d "+
		"in %v (%d lost seqs); edge failovers %d, resets %d, fresh invalidation served %v\n",
		rep.PrimarySeqAtKill, rep.PromotedEpoch, rep.PromotedSeq,
		rep.FailoverAfter.Round(time.Millisecond), rep.LostSeqs,
		rep.EdgeFailovers, rep.FailoverResets, rep.FreshInvalServed)
	fmt.Printf("fencing: zombie returned at epoch %d, fenced %v (%d refusals); "+
		"edge refused %d stale-epoch feeds\n",
		rep.ZombieEpoch, rep.ZombieFenced, rep.FenceRefusals, rep.EdgeEpochFenced)
	fmt.Printf("retry storm: %d pulls vs blackholed origin; budgeted %d retries "+
		"(ceiling %.0f, exhausted %d), unbudgeted %d retries\n",
		rep.StormFetches, rep.BudgetedRetries, rep.RetryCeiling,
		rep.BudgetExhausted, rep.UnbudgetedRetries)
	if rep.RestartResets != 0 {
		return fmt.Errorf("origin restart flushed the edge %d times (want 0)", rep.RestartResets)
	}
	if !rep.RestartCaughtUp {
		return fmt.Errorf("edge never reconciled the post-restart feed")
	}
	if rep.LostSeqs != 0 {
		return fmt.Errorf("failover lost %d invalidation sequences (want 0)", rep.LostSeqs)
	}
	if rep.EdgeFailovers == 0 {
		return fmt.Errorf("edge never adopted the promoted standby's epoch")
	}
	if rep.FailoverResets != 0 {
		return fmt.Errorf("failover flushed the edge %d times (want 0)", rep.FailoverResets)
	}
	if !rep.FreshInvalServed {
		return fmt.Errorf("post-failover invalidation was not refilled fresh")
	}
	if !rep.ZombieFenced {
		return fmt.Errorf("restarted old primary was never fenced")
	}
	if rep.EdgeEpochFenced == 0 {
		return fmt.Errorf("edge accepted the zombie's stale-epoch push")
	}
	// The budget's whole point: retries bounded by deposit flow, not by
	// MaxAttempts x pulls. Allow one bucket of slack for rounding.
	if float64(rep.BudgetedRetries) > rep.RetryCeiling+float64(rep.BudgetBurst) {
		return fmt.Errorf("budgeted storm spent %d retries (ceiling %.0f)",
			rep.BudgetedRetries, rep.RetryCeiling)
	}
	if rep.BudgetExhausted == 0 {
		return fmt.Errorf("retry budget never reported exhaustion under a storm")
	}
	return nil
}

// runTelemetry prints E22: the shed ladder observed purely through
// the ops surface (-ops-addr's registry, trace ring and event log),
// with per-outcome request counts, latency percentiles, and the
// counters-equal-traces invariant.
func runTelemetry() error {
	rep, err := experiments.TelemetrySweep(quickMode)
	if err != nil {
		return err
	}
	fmt.Printf("per-outcome requests and latency, read back from the ops registry:\n")
	fmt.Printf("%-14s %9s %9s %9s %9s\n", "outcome", "requests", "p50", "p95", "p99")
	for _, r := range rep.Rows {
		fmt.Printf("%-14s %9d %7.2fms %7.2fms %7.2fms\n",
			r.Outcome, r.Requests, r.P50ms, r.P95ms, r.P99ms)
	}
	fmt.Printf("traces: %d finished / %d total; events: %d; counters==traces: %v\n",
		rep.TracesFinished, rep.TracesTotal, rep.EventsTotal, rep.CountersMatchTraces)
	fmt.Printf("client-side paced loops: p50/p99 %.2f/%.2fms from intended slots vs %.2f/%.2fms legacy\n",
		rep.ClientSchedP50ms, rep.ClientSchedP99ms, rep.ClientLegacyP50ms, rep.ClientLegacyP99ms)
	if !rep.CountersMatchTraces {
		return fmt.Errorf("per-outcome counters do not sum to finished traces")
	}
	return nil
}

// capacityOut mirrors the -capacity-out flag: where runCapacity
// writes the E27 curve as a benchmark-JSON artifact.
var capacityOut string

// runCapacity prints E27: the calibrated capacity model, the measured
// open-loop capacity curve with its schedule-based latency tails, the
// interpolated knee from two identical-seed runs, and the diurnal
// demonstration leg.
func runCapacity() error {
	res, err := experiments.CapacitySweep(quickMode)
	if err != nil {
		return err
	}
	fmt.Printf("model: %d workers × %v hold → %.0f gen/s; mix %.0f%% incapable; ",
		res.GenWorkers, res.GenHold, res.GenCapacityRPS, 100*res.IncapableShare)
	fmt.Printf("Zipf(1.1) over %d pages, cache = top %d (miss share %.2f)\n",
		res.CorpusPages, res.CacheTopPages, res.MissShare)
	fmt.Printf("predicted knee %.0f/s (shed > %.0f%%)\n",
		res.PredictedKneeRPS, 100*experiments.KneeShedThreshold)
	fmt.Printf("%-5s %9s %9s %6s %6s %5s %4s %9s %6s %6s %8s %8s %8s\n",
		"mult", "offered", "realized", "reqs", "ok", "shed", "err", "goodput", "gp_x", "shed%", "p50", "p95", "p99")
	for _, r := range res.Rows {
		fmt.Printf("%4.1fx %7.0f/s %7.0f/s %6d %6d %5d %4d %7.0f/s %6.2f %5.1f%% %8v %8v %8v\n",
			r.Multiplier, r.OfferedRPS, r.RealizedRPS, r.Requests, r.OK, r.Shed, r.Errors,
			r.GoodputRPS, r.GoodputX, 100*r.ShedRate,
			r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond), r.P99.Round(time.Millisecond))
	}
	switch {
	case res.KneeRPS <= 0:
		fmt.Printf("knee: not reached within the sweep\n")
	default:
		delta := 0.0
		if res.KneeRPS2 > 0 {
			delta = 100 * (res.KneeRPS2 - res.KneeRPS) / res.KneeRPS
		}
		fmt.Printf("measured knee %.0f/s (run2 %.0f/s, delta %+.1f%%; knee_x %.2f)\n",
			res.KneeRPS, res.KneeRPS2, delta, res.KneeRPS/res.GenCapacityRPS)
	}
	if res.DiurnalPeakShed >= 0 {
		fmt.Printf("diurnal day at knee rate: peak shed %.1f%%, trough shed %.1f%%\n",
			100*res.DiurnalPeakShed, 100*res.DiurnalTroughShed)
	}
	if capacityOut != "" {
		if err := writeCapacityArtifact(capacityOut, res); err != nil {
			return fmt.Errorf("writing %s: %w", capacityOut, err)
		}
		fmt.Printf("capacity artifact written to %s\n", capacityOut)
	}
	return nil
}

// writeCapacityArtifact renders the E27 result in the benchmark-JSON
// shape sww-benchjson emits, so the curve can be merged into a PR
// artifact and gated (goodput_x) against a committed baseline.
func writeCapacityArtifact(path string, res *experiments.CapacityResult) error {
	type benchResult struct {
		Name       string             `json:"name"`
		Iterations int64              `json:"iterations"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	doc := struct {
		Env     map[string]string `json:"env,omitempty"`
		Results []benchResult     `json:"results"`
	}{
		Env: map[string]string{"experiment": "E27-capacity"},
	}
	for _, r := range res.Rows {
		doc.Results = append(doc.Results, benchResult{
			Name:       fmt.Sprintf("capacity/mult=%.2f", r.Multiplier),
			Iterations: int64(r.Requests),
			Metrics: map[string]float64{
				"offered_rps":  r.OfferedRPS,
				"realized_rps": r.RealizedRPS,
				"goodput_rps":  r.GoodputRPS,
				"goodput_x":    r.GoodputX,
				"goodput_frac": r.GoodputFrac,
				"shed_rate":    r.ShedRate,
				"errors":       float64(r.Errors),
				"p50_ms":       float64(r.P50) / float64(time.Millisecond),
				"p95_ms":       float64(r.P95) / float64(time.Millisecond),
				"p99_ms":       float64(r.P99) / float64(time.Millisecond),
				"cache_hits":   float64(r.Stats.CacheHits),
			},
		})
	}
	knee := benchResult{
		Name: "capacity/knee",
		Metrics: map[string]float64{
			"knee_rps":           res.KneeRPS,
			"knee_rps_run2":      res.KneeRPS2,
			"predicted_knee_rps": res.PredictedKneeRPS,
			"gen_capacity_rps":   res.GenCapacityRPS,
			"incapable_share":    res.IncapableShare,
			"miss_share":         res.MissShare,
		},
	}
	if res.GenCapacityRPS > 0 {
		knee.Metrics["knee_x"] = res.KneeRPS / res.GenCapacityRPS
	}
	doc.Results = append(doc.Results, knee)
	if res.DiurnalPeakShed >= 0 {
		doc.Results = append(doc.Results, benchResult{
			Name: "capacity/diurnal",
			Metrics: map[string]float64{
				"peak_shed_rate":   res.DiurnalPeakShed,
				"trough_shed_rate": res.DiurnalTroughShed,
			},
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
