package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkSynthKernel/1024-8   \t 30   36521342 ns/op   4211 B/op   12 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkSynthKernel/1024-8" || r.Iterations != 30 {
		t.Errorf("parsed %+v", r)
	}
	want := map[string]float64{"ns/op": 36521342, "B/op": 4211, "allocs/op": 12}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Errorf("%s = %v, want %v", k, r.Metrics[k], v)
		}
	}
}

func TestParseBenchLineCustomMetric(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkServeTravelBlog-4 100 4630000 ns/op 56.1 compression-x 0.93 clip")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Metrics["compression-x"] != 56.1 || r.Metrics["clip"] != 0.93 {
		t.Errorf("custom metrics lost: %+v", r.Metrics)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \tsww\t1.2s",
		"goos: linux",
		"BenchmarkBroken notanumber 12 ns/op",
		"--- BENCH: BenchmarkX",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parsed noise line %q", line)
		}
	}
}
