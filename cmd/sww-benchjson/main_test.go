package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkSynthKernel/1024-8   \t 30   36521342 ns/op   4211 B/op   12 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkSynthKernel/1024-8" || r.Iterations != 30 {
		t.Errorf("parsed %+v", r)
	}
	want := map[string]float64{"ns/op": 36521342, "B/op": 4211, "allocs/op": 12}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Errorf("%s = %v, want %v", k, r.Metrics[k], v)
		}
	}
}

func TestParseBenchLineCustomMetric(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkServeTravelBlog-4 100 4630000 ns/op 56.1 compression-x 0.93 clip")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Metrics["compression-x"] != 56.1 || r.Metrics["clip"] != 0.93 {
		t.Errorf("custom metrics lost: %+v", r.Metrics)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \tsww\t1.2s",
		"goos: linux",
		"BenchmarkBroken notanumber 12 ns/op",
		"--- BENCH: BenchmarkX",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parsed noise line %q", line)
		}
	}
}

func writeDoc(t *testing.T, path string, doc benchDoc) {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func capDoc(fracs map[string]float64) benchDoc {
	doc := benchDoc{Results: []benchResult{
		{Name: "capacity/knee", Metrics: map[string]float64{"knee_rps": 370}},
	}}
	for name, f := range fracs {
		doc.Results = append(doc.Results, benchResult{
			Name:    name,
			Metrics: map[string]float64{"goodput_frac": f, "shed_rate": 1 - f},
		})
	}
	return doc
}

func TestCapacityResultsMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.json")
	writeDoc(t, path, capDoc(map[string]float64{"capacity/mult=0.50": 1.0}))
	results, err := capacityResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	if _, err := capacityResults(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	writeDoc(t, empty, benchDoc{})
	if _, err := capacityResults(empty); err == nil {
		t.Error("empty artifact accepted")
	}
}

func TestGateGoodputFrac(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.json")
	writeDoc(t, base, capDoc(map[string]float64{
		"capacity/mult=0.50": 1.00,
		"capacity/mult=1.20": 0.95,
		"capacity/mult=2.40": 0.85,
	}))

	// Same curve passes.
	doc := capDoc(map[string]float64{
		"capacity/mult=0.50": 0.99,
		"capacity/mult=1.20": 0.93,
		"capacity/mult=2.40": 0.86,
	})
	if err := gateGoodputFrac(doc, base, 0.9); err != nil {
		t.Errorf("healthy curve rejected: %v", err)
	}

	// A collapsed curve fails: with equal weights the aggregate
	// (1.00+0.70)/2 = 0.85 is under 0.9 × the baseline's 0.975.
	doc = capDoc(map[string]float64{
		"capacity/mult=0.50": 1.00,
		"capacity/mult=1.20": 0.70,
	})
	if err := gateGoodputFrac(doc, base, 0.9); err == nil {
		t.Error("collapsed goodput passed the gate")
	}

	// Weighting is by request count: one low-traffic row dipping is
	// absorbed when the heavy rows hold the curve.
	doc = benchDoc{Results: []benchResult{
		{Name: "capacity/mult=0.50", Iterations: 20,
			Metrics: map[string]float64{"goodput_frac": 0.70}},
		{Name: "capacity/mult=1.20", Iterations: 500,
			Metrics: map[string]float64{"goodput_frac": 0.95}},
		{Name: "capacity/mult=2.40", Iterations: 500,
			Metrics: map[string]float64{"goodput_frac": 0.85}},
	}}
	if err := gateGoodputFrac(doc, base, 0.9); err != nil {
		t.Errorf("noisy low-traffic row failed the weighted gate: %v", err)
	}
	// ...but the same dip on a heavy row is a real regression.
	doc.Results[0].Iterations = 5000
	if err := gateGoodputFrac(doc, base, 0.9); err == nil {
		t.Error("heavy-row collapse passed the weighted gate")
	}

	// No shared rows is an error, not a silent pass.
	doc = capDoc(map[string]float64{"capacity/mult=9.99": 1.0})
	if err := gateGoodputFrac(doc, base, 0.9); err == nil {
		t.Error("gate passed with nothing to compare")
	}

	// Knee/diurnal rows (no goodput_frac) are ignored.
	doc = benchDoc{Results: []benchResult{
		{Name: "capacity/knee", Metrics: map[string]float64{"knee_rps": 1}},
	}}
	if err := gateGoodputFrac(doc, base, 0.9); err == nil {
		t.Error("knee-only document should have nothing to compare")
	}
}
