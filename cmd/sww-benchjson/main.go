// Command sww-benchjson converts `go test -bench` text output on
// stdin into a JSON document on stdout, so CI can archive benchmark
// runs (BENCH_PR5.json) as machine-readable artifacts.
//
// Usage:
//
//	go test -bench 'SynthKernel' -benchtime 1x -benchmem ./... | sww-benchjson > BENCH_PR5.json
//	sww-benchjson -telemetry http://127.0.0.1:8421/statusz < bench.txt > BENCH_PR5.json
//
// -telemetry merges a running server's ops listener snapshot (the
// /statusz JSON of -ops-addr, fetched from a http:// URL or read from
// a file) into the document: each histogram becomes one result named
// telemetry/<metric> with count and p50/p95/p99 milliseconds, and each
// counter and gauge becomes a single-value row, so a load run's
// server-side percentiles and resilience counters (failovers, fence
// refusals, retry-budget exhaustion) land next to the micro-benchmarks
// in one artifact.
//
// Each benchmark result line has the shape
//
//	BenchmarkSynthKernel/1024-8   30   36521342 ns/op   4211 B/op   12 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs. Units
// are kept verbatim as metric keys, so custom b.ReportMetric units
// survive. Non-benchmark lines (pkg headers, PASS, ok) are skipped;
// `goos`/`goarch`/`pkg`/`cpu` headers are captured as environment.
//
// -gate compares the parsed results against a committed baseline
// document and exits non-zero when any benchmark present in both
// regresses its allocs/op beyond -gate-tolerance (default 10%).
// Gating is on allocations, not nanoseconds: allocs/op is stable
// across machines and load, so the gate works on shared CI runners
// where timing thresholds would flake. The GOMAXPROCS suffix
// (`Benchmark...-8`) is stripped before matching, for the same
// reason. A baseline of 0 allocs/op admits no regression at all —
// 10% of zero is zero, which is exactly right for the zero-allocation
// wire benchmarks.
//
//	go test -bench 'FramerWrite|WarmServeWire' -benchtime 10000x -benchmem ./... \
//	  | sww-benchjson -gate BENCH_PR9.json > BENCH_PR9_ci.json
//
// -capacity merges an E27 capacity-curve artifact (the JSON
// `sww-bench -capacity-out` writes) into the document, and
// -gate-goodput compares it against a committed baseline: every
// capacity row shared with the baseline must keep its goodput_frac
// (the admitted fraction of offered requests) at or above
// -goodput-min (default 0.9) of the stored value. goodput_frac is
// gated for the same reason allocs/op is: it is a ratio of counts,
// stable across machines, where absolute RPS thresholds would flake
// on shared CI runners.
//
//	sww-benchjson -capacity capacity.json -gate-goodput BENCH_PR10.json \
//	  < /dev/null > BENCH_PR10_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sww/internal/telemetry"
)

type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchDoc struct {
	Env     map[string]string `json:"env,omitempty"`
	Results []benchResult     `json:"results"`
}

func main() {
	telSource := flag.String("telemetry", "", "ops /statusz source (http:// URL or file path) whose histograms are merged into the document")
	gateFile := flag.String("gate", "", "baseline benchmark JSON; exit non-zero when a shared benchmark's allocs/op regresses beyond -gate-tolerance")
	gateTol := flag.Float64("gate-tolerance", 0.10, "allowed fractional allocs/op regression in -gate mode")
	capFile := flag.String("capacity", "", "E27 capacity artifact (from sww-bench -capacity-out) to merge into the document")
	gateGoodput := flag.String("gate-goodput", "", "baseline benchmark JSON; exit non-zero when a shared capacity row's goodput_frac falls below -goodput-min of the stored value")
	goodputMin := flag.Float64("goodput-min", 0.90, "minimum fraction of the baseline goodput_frac a capacity row must keep in -gate-goodput mode")
	flag.Parse()
	doc := benchDoc{Env: map[string]string{}, Results: []benchResult{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Env[key] = v
			}
		}
		if r, ok := parseBenchLine(line); ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "sww-benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if *telSource != "" {
		results, err := telemetryResults(*telSource)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sww-benchjson: telemetry %s: %v\n", *telSource, err)
			os.Exit(1)
		}
		doc.Results = append(doc.Results, results...)
	}
	if *capFile != "" {
		results, err := capacityResults(*capFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sww-benchjson: capacity %s: %v\n", *capFile, err)
			os.Exit(1)
		}
		doc.Results = append(doc.Results, results...)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "sww-benchjson: %v\n", err)
		os.Exit(1)
	}
	if *gateFile != "" {
		if err := gateAllocs(doc, *gateFile, *gateTol); err != nil {
			fmt.Fprintf(os.Stderr, "sww-benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *gateGoodput != "" {
		if err := gateGoodputFrac(doc, *gateGoodput, *goodputMin); err != nil {
			fmt.Fprintf(os.Stderr, "sww-benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

// capacityResults reads an E27 capacity artifact — already in the
// benchmark-JSON shape — and returns its rows for merging.
func capacityResults(path string) ([]benchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("no results in %s", path)
	}
	return doc.Results, nil
}

// gateGoodputFrac fails when the request-weighted mean goodput_frac
// over the capacity rows shared between doc and the baseline file
// drops below min × the baseline's weighted mean. Weighting by
// request count (the row's iterations) and aggregating across rows
// keeps the gate robust on small quick-mode samples — a single
// low-traffic row shedding a few extra requests is noise, a curve
// whose success fraction collapses is a regression. Per-row fractions
// are still printed for diagnosis. The knee and diurnal rows carry no
// goodput_frac and pass through unchecked.
func gateGoodputFrac(doc benchDoc, baselinePath string, min float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("goodput gate baseline: %v", err)
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("goodput gate baseline %s: %v", baselinePath, err)
	}
	type frac struct {
		v float64
		w float64
	}
	baseFrac := map[string]frac{}
	for _, r := range base.Results {
		if v, ok := r.Metrics["goodput_frac"]; ok {
			w := float64(r.Iterations)
			if w <= 0 {
				w = 1
			}
			baseFrac[benchKey(r.Name)] = frac{v: v, w: w}
		}
	}
	compared := 0
	var gotSum, gotW, wantSum, wantW float64
	for _, r := range doc.Results {
		got, ok := r.Metrics["goodput_frac"]
		if !ok {
			continue
		}
		want, ok := baseFrac[benchKey(r.Name)]
		if !ok {
			continue
		}
		compared++
		w := float64(r.Iterations)
		if w <= 0 {
			w = 1
		}
		gotSum += got * w
		gotW += w
		wantSum += want.v * want.w
		wantW += want.w
		fmt.Fprintf(os.Stderr, "sww-benchjson: goodput gate row %s: goodput_frac %.3f (baseline %.3f)\n",
			benchKey(r.Name), got, want.v)
	}
	if compared == 0 {
		return fmt.Errorf("goodput gate: no capacity rows shared with baseline %s", baselinePath)
	}
	gotMean, wantMean := gotSum/gotW, wantSum/wantW
	limit := wantMean * min
	if gotMean < limit {
		return fmt.Errorf("goodput gate: weighted goodput_frac %.3f below %.0f%% of baseline %.3f (floor %.3f) over %d rows",
			gotMean, min*100, wantMean, limit, compared)
	}
	fmt.Fprintf(os.Stderr, "sww-benchjson: goodput gate passed: weighted goodput_frac %.3f vs baseline %.3f (floor %.3f) over %d rows\n",
		gotMean, wantMean, limit, compared)
	return nil
}

// benchKey normalizes a benchmark name for cross-run matching by
// stripping the GOMAXPROCS suffix go test appends (`Name-8`).
func benchKey(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// gateAllocs fails when any benchmark shared between doc and the
// baseline file regresses allocs/op beyond tol.
func gateAllocs(doc benchDoc, baselinePath string, tol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("gate baseline: %v", err)
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("gate baseline %s: %v", baselinePath, err)
	}
	baseAllocs := map[string]float64{}
	for _, r := range base.Results {
		if v, ok := r.Metrics["allocs/op"]; ok {
			baseAllocs[benchKey(r.Name)] = v
		}
	}
	compared, failures := 0, 0
	for _, r := range doc.Results {
		got, ok := r.Metrics["allocs/op"]
		if !ok {
			continue
		}
		want, ok := baseAllocs[benchKey(r.Name)]
		if !ok {
			continue
		}
		compared++
		limit := want * (1 + tol)
		if got > limit {
			failures++
			fmt.Fprintf(os.Stderr, "sww-benchjson: gate FAIL %s: %.0f allocs/op, baseline %.0f (limit %.1f)\n",
				benchKey(r.Name), got, want, limit)
		} else {
			fmt.Fprintf(os.Stderr, "sww-benchjson: gate ok %s: %.0f allocs/op (baseline %.0f)\n",
				benchKey(r.Name), got, want)
		}
	}
	if compared == 0 {
		return fmt.Errorf("gate: no benchmarks shared with baseline %s", baselinePath)
	}
	if failures > 0 {
		return fmt.Errorf("gate: %d of %d benchmarks regressed allocs/op beyond %.0f%%", failures, compared, tol*100)
	}
	fmt.Fprintf(os.Stderr, "sww-benchjson: gate passed: %d benchmarks within %.0f%% of baseline\n", compared, tol*100)
	return nil
}

// parseBenchLine parses one `Benchmark... iters value unit ...` line.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return benchResult{}, false
	}
	return r, true
}

// telemetryResults reads a /statusz snapshot and renders each latency
// histogram as one result row.
func telemetryResults(source string) ([]benchResult, error) {
	var raw []byte
	var err error
	if strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://") {
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get(source)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return nil, fmt.Errorf("status %s", resp.Status)
		}
		raw, err = io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
	} else if raw, err = os.ReadFile(source); err != nil {
		return nil, err
	}
	// /statusz wraps the registry snapshot in {"metrics": ...}; accept
	// a bare snapshot too so a saved registry dump also works.
	var statusz struct {
		Metrics telemetry.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &statusz); err != nil {
		return nil, err
	}
	snap := statusz.Metrics
	if len(snap.Histograms) == 0 && len(snap.Counters) == 0 && len(snap.Gauges) == 0 {
		var bare telemetry.Snapshot
		if err := json.Unmarshal(raw, &bare); err == nil {
			snap = bare
		}
	}
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	results := make([]benchResult, 0, len(names)+len(snap.Counters)+len(snap.Gauges))
	for _, name := range names {
		h := snap.Histograms[name]
		results = append(results, benchResult{
			Name:       "telemetry/" + name,
			Iterations: int64(h.Count),
			Metrics: map[string]float64{
				"count":       float64(h.Count),
				"sum_seconds": h.SumSeconds,
				"p50_ms":      h.P50ms,
				"p95_ms":      h.P95ms,
				"p99_ms":      h.P99ms,
			},
		})
	}
	// Counters and gauges ride along as single-value rows so resilience
	// counters (failovers, fence refusals, retry-budget exhaustion, ...)
	// are comparable across PR artifacts like the latency families are.
	names = names[:0]
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		results = append(results, benchResult{
			Name:    "telemetry/" + name,
			Metrics: map[string]float64{"value": float64(snap.Counters[name])},
		})
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		results = append(results, benchResult{
			Name:    "telemetry/" + name,
			Metrics: map[string]float64{"value": snap.Gauges[name]},
		})
	}
	return results, nil
}
