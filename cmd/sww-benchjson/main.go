// Command sww-benchjson converts `go test -bench` text output on
// stdin into a JSON document on stdout, so CI can archive benchmark
// runs (BENCH_PR4.json) as machine-readable artifacts.
//
// Usage:
//
//	go test -bench 'SynthKernel' -benchtime 1x -benchmem ./... | sww-benchjson > BENCH_PR4.json
//
// Each benchmark result line has the shape
//
//	BenchmarkSynthKernel/1024-8   30   36521342 ns/op   4211 B/op   12 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs. Units
// are kept verbatim as metric keys, so custom b.ReportMetric units
// survive. Non-benchmark lines (pkg headers, PASS, ok) are skipped;
// `goos`/`goarch`/`pkg`/`cpu` headers are captured as environment.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchDoc struct {
	Env     map[string]string `json:"env,omitempty"`
	Results []benchResult     `json:"results"`
}

func main() {
	doc := benchDoc{Env: map[string]string{}, Results: []benchResult{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Env[key] = v
			}
		}
		if r, ok := parseBenchLine(line); ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "sww-benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "sww-benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `Benchmark... iters value unit ...` line.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return benchResult{}, false
	}
	return r, true
}
