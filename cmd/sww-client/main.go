// Command sww-client is the §5.2 generative client: it connects to an
// sww-server, advertises its generation ability, fetches a page,
// generates the placeholder media locally, and "renders" the result
// by writing the final HTML and all assets to an output directory
// (this prototype's stand-in for the paper's PyQT GUI).
//
// Usage:
//
//	sww-client [-addr localhost:8420] [-path /wiki/landscape]
//	           [-device laptop|workstation|mobile] [-out ./rendered]
//	           [-traditional] [-image-model ...] [-text-model ...]
//	           [-peers edge1=localhost:8430,edge2=localhost:8431]
//	           [-probe-peers]
//
// -peers switches to ring routing through an edge fleet: the path's
// consistent-hash owner is tried first, then its ring successors, so
// a dead edge is failed over without any extra flags. -addr is
// ignored in this mode. -probe-peers additionally health-probes the
// fleet before routing and removes unresponsive edges from the
// placement ring — the ring then reflects live membership rather than
// the flag's boot-time list, so no fetch is spent discovering a dead
// owner the probe already found.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sww/internal/cdn"
	"sww/internal/core"
	"sww/internal/device"
	"sww/internal/genai/imagegen"
	"sww/internal/genai/textgen"
)

func main() {
	addr := flag.String("addr", "localhost:8420", "server address")
	path := flag.String("path", "/wiki/landscape", "page to fetch")
	dev := flag.String("device", "laptop", "device profile: laptop|workstation|mobile")
	out := flag.String("out", "rendered", "output directory")
	traditional := flag.Bool("traditional", false, "act as a non-generative (legacy) client")
	imageModel := flag.String("image-model", imagegen.SD3Medium, "local image model")
	textModel := flag.String("text-model", textgen.DeepSeek8, "local text model")
	useH3 := flag.Bool("h3", false, "connect with the HTTP/3 mapping instead of HTTP/2")
	peers := flag.String("peers", "", "ring-route through an edge fleet: comma-separated name=addr list")
	probePeers := flag.Bool("probe-peers", false, "health-probe the fleet first and drop dead edges from the ring")
	flag.Parse()

	profile, err := profileByName(*dev)
	if err != nil {
		log.Fatal(err)
	}
	var proc *core.PageProcessor
	if !*traditional {
		proc, err = core.NewPageProcessor(profile, *imageModel, *textModel)
		if err != nil {
			log.Fatalf("building pipeline: %v", err)
		}
	}

	if *peers != "" {
		fetchThroughEdges(*peers, *path, *out, *probePeers, profile, proc)
		return
	}

	nc, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	var client *core.Client
	if *useH3 {
		client, err = core.NewClientH3(nc, profile, proc)
	} else {
		client, err = core.NewClient(nc, profile, proc)
	}
	if err != nil {
		log.Fatalf("handshake: %v", err)
	}
	defer client.Close()
	fmt.Printf("negotiated ability: %v\n", client.Negotiated())

	res, err := client.Fetch(*path)
	if err != nil {
		log.Fatalf("fetch %s: %v", *path, err)
	}
	fmt.Printf("mode:        %s\n", res.Mode)
	fmt.Printf("wire bytes:  %d\n", res.WireBytes)
	fmt.Printf("assets:      %d\n", len(res.Assets))
	if res.Report != nil {
		fmt.Printf("generated:   %d items in %.1f simulated %s-seconds (%.3f Wh)\n",
			len(res.Report.Items), res.Report.SimGenTime.Seconds(), *dev, res.Report.EnergyWh)
		if res.Report.OriginalBytes > 0 {
			fmt.Printf("media ratio: %.1fx (%d B original vs %d B metadata)\n",
				res.Report.MediaCompressionRatio(),
				res.Report.OriginalBytes, res.Report.MetadataContentBytes)
		}
	}
	fmt.Printf("transmit:    %v, %.5f Wh\n", res.TransmitTime, res.TransmitEnergyWh)

	if err := writeRendered(*out, *path, res); err != nil {
		log.Fatalf("writing output: %v", err)
	}
	fmt.Printf("rendered to %s\n", *out)
}

// fetchThroughEdges ring-routes one fetch through the edge fleet in
// spec ("name=addr,name=addr"), printing which edge served it. With
// probe set, a synchronous membership round runs first: unresponsive
// edges are declared dead and removed from the ring before routing.
func fetchThroughEdges(spec, path, out string, probe bool, profile device.Profile, proc *core.PageProcessor) {
	dials := map[string]core.DialFunc{}
	for _, pair := range strings.Split(spec, ",") {
		name, addr, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("bad -peers entry %q (want name=addr)", pair)
		}
		target := addr
		dials[name] = func() (net.Conn, error) {
			return net.DialTimeout("tcp", target, 5*time.Second)
		}
	}
	ec := cdn.NewEdgeClient(cdn.EdgeClientConfig{
		Device: profile,
		Proc:   proc,
		Retry:  core.RetryPolicy{MaxAttempts: 2, AttemptTimeout: 10 * time.Second},
	}, dials)
	defer ec.Close()

	if probe {
		// One-shot client: a single failed probe is all the evidence
		// we will ever gather, so the suspect/dead ladder collapses to
		// "answered the probe or not" via nanosecond thresholds.
		m := ec.EnableMembership(cdn.MemberConfig{
			ProbeTimeout: 2 * time.Second,
			SuspectAfter: time.Nanosecond,
			DeadAfter:    time.Nanosecond,
		})
		m.Tick(context.Background())
		states := m.States()
		names := make([]string, 0, len(states))
		for n := range states {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s=%s", n, states[n]))
		}
		fmt.Printf("peer states: %s (dead peers removed from ring)\n", strings.Join(parts, " "))
	}

	fmt.Printf("ring owner for %s: %s (failover order %v)\n",
		path, ec.Ring().Lookup(path), ec.Ring().LookupN(path, ec.Ring().Len()))
	res, served, err := ec.Fetch(path)
	if err != nil {
		log.Fatalf("fetch %s: %v", path, err)
	}
	fmt.Printf("served by:   %s\n", served)
	fmt.Printf("mode:        %s\n", res.Mode)
	fmt.Printf("wire bytes:  %d\n", res.WireBytes)
	fmt.Printf("assets:      %d\n", len(res.Assets))
	if err := writeRendered(out, path, res); err != nil {
		log.Fatalf("writing output: %v", err)
	}
	fmt.Printf("rendered to %s\n", out)
}

func profileByName(name string) (device.Profile, error) {
	for _, p := range device.Profiles() {
		if p.Class.String() == name {
			return p, nil
		}
	}
	return device.Profile{}, fmt.Errorf("unknown device %q (want laptop|workstation|mobile)", name)
}

// writeRendered stores the final page and its assets under dir,
// mirroring asset paths as subdirectories.
func writeRendered(dir, pagePath string, res *core.FetchResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	pageFile := strings.Trim(strings.ReplaceAll(pagePath, "/", "_"), "_")
	if pageFile == "" {
		pageFile = "index"
	}
	if err := os.WriteFile(filepath.Join(dir, pageFile+".html"), []byte(res.HTML), 0o644); err != nil {
		return err
	}
	for assetPath, data := range res.Assets {
		fp := filepath.Join(dir, filepath.FromSlash(strings.TrimPrefix(assetPath, "/")))
		if err := os.MkdirAll(filepath.Dir(fp), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(fp, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
