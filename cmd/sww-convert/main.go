// Command sww-convert is the §4.2 conversion script: it reads a
// traditional HTML page, inverts its images to prompts, summarizes
// long prose to bullet points, and writes the SWW form.
//
// Usage:
//
//	sww-convert [-in page.html] [-out page.sww.html]
//	            [-min-image-words 3] [-min-text-words 60]
//
// Without -in, a built-in demo page is converted and printed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sww/internal/convert"
	"sww/internal/html"
)

const demoPage = `<!DOCTYPE html>
<html><head><title>Autumn in the high valley</title></head><body>
<h1>Autumn in the high valley</h1>
<img src="/stock/larch-forest-golden-autumn.jpg" alt="golden larch forest on a mountain slope in autumn light" width="512" height="512">
<p>Every October the larches along the high valley turn a deep gold, and the first snow usually dusts the ridgeline while the meadows below are still green. The contrast draws photographers from across the region, and the narrow road over the pass fills with cars on clear weekends, so the early bus from the village remains the quietest way up to the trailheads.</p>
<img src="/photos/our-cabin.jpg" alt="our cabin" data-sww="unique">
<p data-sww="unique">Book the cabin through the contact form; we answer within two days.</p>
</body></html>`

func main() {
	in := flag.String("in", "", "input HTML file (default: built-in demo)")
	out := flag.String("out", "", "output file (default: stdout)")
	minImageWords := flag.Int("min-image-words", 3, "keep images with fewer prompt words unique")
	minTextWords := flag.Int("min-text-words", 60, "keep shorter prose blocks unique")
	flag.Parse()

	src := demoPage
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			log.Fatalf("reading %s: %v", *in, err)
		}
		src = string(data)
	}
	doc := html.Parse(src)
	opts := convert.DefaultOptions()
	opts.MinImageWords = *minImageWords
	opts.MinTextWords = *minTextWords
	rep := convert.Convert(doc, opts, nil)

	fmt.Fprintf(os.Stderr, "images: %d converted, %d kept unique\n", rep.ImagesConverted, rep.ImagesKept)
	fmt.Fprintf(os.Stderr, "text:   %d converted, %d kept unique\n", rep.TextConverted, rep.TextKept)
	fmt.Fprintf(os.Stderr, "html:   %d B -> %d B\n", rep.BytesBefore, rep.BytesAfter)
	if rep.ImagesConverted > 0 {
		fmt.Fprintf(os.Stderr, "mean inversion fidelity: %.2f\n", rep.MeanFidelity)
	}

	result := html.RenderString(doc)
	if *out == "" {
		fmt.Println(result)
		return
	}
	if err := os.WriteFile(*out, []byte(result), 0o644); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
