module sww

go 1.22
